//! The resumable search engine: [`ChunkRanking`] + [`SearchSession`].
//!
//! [`crate::search::search`] used to be a one-shot monolith — ranking,
//! prefetching, scanning, logging and stop-rule checks fused into a single
//! loop over one concrete reader. This module decomposes it:
//!
//! * [`ChunkRanking`] is step 1 of §4.3 in isolation — centroid ranking
//!   plus the suffix-minimum of chunk lower bounds — computed once and
//!   reusable across any number of stop rules;
//! * [`SearchSession`] is the resumable scan: [`SearchSession::step`]
//!   advances exactly one chunk and returns its [`ChunkEvent`], so a
//!   caller can pause, inspect intermediate quality, and resume — the
//!   paper's *anytime* contribution surfaced as an API;
//! * stop rules are **predicates on session state**
//!   ([`SearchSession::evaluate_rule`]), not control flow baked into the
//!   loop. `search()` is now ranking + drive-to-stop, and
//!   [`evaluate_stop_rules`] answers every `Chunks(n)` / `VirtualTime(t)` /
//!   `ToCompletionEps` variant from ONE scan of the collection instead of
//!   re-searching per rule.
//!
//! Chunks arrive through a pluggable [`ChunkSource`] (file reads,
//! prefetching, or a shared resident cache). Every source reports the same
//! modelled `bytes_read` per chunk, and the session feeds the same
//! [`PipelineClock`] the monolith did, so the virtual-time accounting —
//! and with it every reported figure — is bit-identical regardless of
//! backend (the `batch_determinism` and `session_equivalence` tests pin
//! this down).

use crate::coarse::CoarseQuantizer;
use crate::neighbors::NeighborSet;
use crate::search::{ChunkEvent, SearchLog, SearchParams, SearchResult, StopRule};
use eff2_descriptor::{
    adc_l2_sq_batch, as_rows, l2_sq, scan_block_into, DescriptorCodec, PreparedQuery, Vector,
};
use eff2_storage::chunkfile::ChunkPayload;
use eff2_storage::diskmodel::{DiskModel, PipelineClock, VirtualDuration};
use eff2_storage::epoch::FoldedDelta;
use eff2_storage::source::{ChunkSource, ChunkStream, PrefetchSource, SourcedChunk};
use eff2_storage::{ChunkStore, ErrorClass, Result};
use std::collections::BTreeMap;
use std::sync::Arc;

/// What a session does when its stream reports a chunk permanently
/// unreadable (an error whose [`ErrorClass`] is `Permanent`, e.g.
/// [`ChunkLost`](eff2_storage::Error::ChunkLost) from a retry layer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SkipPolicy {
    /// Propagate the error; the search fails (the historical behaviour).
    #[default]
    Abort,
    /// Record the chunk in the log's [`Degradation`] report and continue
    /// with the next ranked chunk. Transient-class errors still propagate
    /// — only a *permanent* loss is skippable.
    ///
    /// [`Degradation`]: crate::search::Degradation
    SkipUnavailable,
}

/// A coarse cell whose member chunks have not been expanded into the
/// ranked order yet (two-level ranking only).
#[derive(Clone, Debug)]
struct PendingCell {
    /// Distance from the query to the cell center.
    dist: f32,
    /// Conservative lower bound `max(dist − cell_radius, 0)` on any
    /// descriptor stored in any member chunk.
    bound: f32,
    /// Cell index (the expansion tie-breaker).
    cell: u32,
    /// Member chunk ids, ascending.
    members: Vec<u32>,
}

/// Step 1 of the search (§4.3): every chunk ranked by the distance from
/// the query to its centroid, plus the suffix-minimum of the chunk lower
/// bounds `max(d(q, centroid) − radius, 0)` along that order.
///
/// The suffix minimum is what makes completion *exact*: ranking is by
/// centroid distance while the bound subtracts the radius, so the bound is
/// not monotone along the ranked order — the test must consider the best
/// bound among **all** remaining chunks, not just the next one.
///
/// A ranking is either **flat** ([`rank`](Self::rank): every chunk ranked
/// up front) or **two-level** ([`rank_two_level`](Self::rank_two_level):
/// coarse cells ranked up front, member chunks expanded lazily wave by
/// wave as the scan consumes them). In the two-level form the suffix
/// minimum is floored by the best bound among the still-pending cells, so
/// [`remaining_bound`](Self::remaining_bound) stays a true lower bound on
/// every unscanned descriptor and the to-completion stop rule stays exact.
#[derive(Clone, Debug)]
pub struct ChunkRanking {
    /// `(centroid distance, chunk id)` of the *expanded* chunks. Flat
    /// rankings hold every chunk sorted ascending (ties by id); two-level
    /// rankings append one sorted wave per expanded cell.
    ranked: Vec<(f32, u32)>,
    /// `suffix_min_bound[i]` = best lower bound among expanded ranks `i..`
    /// **and** every pending cell; the final entry is the pending floor
    /// (`+∞` when nothing is pending).
    suffix_min_bound: Vec<f32>,
    /// Descriptor count per chunk id (store order) — what a skipped chunk
    /// costs the degradation report.
    counts: Vec<u32>,
    /// `(centroid, radius)` per chunk id (store order) — what wave
    /// expansion and the suffix rebuild need without going back to the
    /// store.
    chunk_geo: Vec<(Vector, f32)>,
    /// Coarse cells not yet expanded, sorted by `(dist, cell)` descending
    /// so `pop()` yields the nearest. Empty for flat rankings.
    pending: Vec<PendingCell>,
    /// Centroid distance evaluations spent so far (flat: one per chunk;
    /// two-level: one per cell plus one per expanded member chunk).
    evals: u64,
    /// Total chunks this ranking covers (expanded + pending members).
    total: usize,
    /// Modelled cost of reading and ranking the chunk index.
    index_read_time: VirtualDuration,
}

impl Default for ChunkRanking {
    /// An empty ranking holding no chunks — the reusable-buffer seed for
    /// [`ChunkRanking::rank_into`].
    fn default() -> ChunkRanking {
        ChunkRanking {
            ranked: Vec::new(),
            suffix_min_bound: Vec::new(),
            counts: Vec::new(),
            chunk_geo: Vec::new(),
            pending: Vec::new(),
            evals: 0,
            total: 0,
            index_read_time: VirtualDuration::ZERO,
        }
    }
}

impl ChunkRanking {
    /// Ranks every chunk of `store` for `query` and charges the index read
    /// under `model`. Pure computation over the in-memory index — no I/O.
    pub fn rank(store: &ChunkStore, model: &DiskModel, query: &Vector) -> ChunkRanking {
        let mut ranking = ChunkRanking::default();
        ranking.rank_into(store, model, query);
        ranking
    }

    /// [`rank`](Self::rank) into `self`, reusing its buffers: repeated
    /// rankings (a batch worker, a serving scheduler admitting query after
    /// query) allocate nothing once the vectors have grown to the store
    /// size. The result is identical to a fresh [`rank`](Self::rank).
    pub fn rank_into(&mut self, store: &ChunkStore, model: &DiskModel, query: &Vector) {
        let metas = store.metas();
        let n_chunks = metas.len();
        self.ranked.clear();
        self.ranked.extend(
            metas
                .iter()
                .enumerate()
                .map(|(i, m)| (m.centroid.dist(query), i as u32)),
        );
        self.ranked
            .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        self.counts.clear();
        self.counts.extend(metas.iter().map(|m| m.count));
        self.chunk_geo.clear();
        self.chunk_geo
            .extend(metas.iter().map(|m| (m.centroid, m.radius)));
        self.pending.clear();
        self.evals = n_chunks as u64;
        self.total = n_chunks;
        self.index_read_time = model.index_read_time(n_chunks, store.index_bytes());
        self.rebuild_suffix();
    }

    /// Ranks `store`'s chunks **two-level**: the coarse cells of `coarse`
    /// are ranked by center distance now, and each cell's member chunks
    /// are expanded into the scan order lazily
    /// ([`expand_wave`](Self::expand_wave)) only when the scan reaches
    /// them. Costs `n_cells` centroid evaluations up front instead of
    /// `n_chunks`; [`centroid_evals`](Self::centroid_evals) tracks the
    /// running total as cells expand.
    pub fn rank_two_level(
        store: &ChunkStore,
        model: &DiskModel,
        query: &Vector,
        coarse: &CoarseQuantizer,
    ) -> ChunkRanking {
        let metas = store.metas();
        let mut ranking = ChunkRanking {
            counts: metas.iter().map(|m| m.count).collect(),
            chunk_geo: metas.iter().map(|m| (m.centroid, m.radius)).collect(),
            evals: coarse.n_cells() as u64,
            index_read_time: model.index_read_time(metas.len(), store.index_bytes()),
            ..ChunkRanking::default()
        };
        ranking.pending.extend(
            coarse
                .cells()
                .filter(|(_, _, _, members)| !members.is_empty())
                .map(|(cell, center, radius, members)| {
                    let dist = center.dist(query);
                    PendingCell {
                        dist,
                        bound: (dist - radius).max(0.0),
                        cell: cell as u32,
                        members: members.to_vec(),
                    }
                }),
        );
        // Descending, so `pop()` hands back the nearest cell first.
        ranking
            .pending
            .sort_by(|a, b| b.dist.total_cmp(&a.dist).then(b.cell.cmp(&a.cell)));
        ranking.total = ranking
            .pending
            .iter()
            .map(|c| c.members.len())
            .sum::<usize>();
        ranking.rebuild_suffix();
        ranking
    }

    /// Recomputes the suffix-minimum of the chunk lower bounds along the
    /// expanded order, floored by the best pending-cell bound. Every slot
    /// is a true lower bound on all descriptors not yet consumed at that
    /// position — expanded chunks ahead *and* every pending cell.
    fn rebuild_suffix(&mut self) {
        let floor = self
            .pending
            .iter()
            .fold(f32::INFINITY, |m, c| m.min(c.bound));
        self.suffix_min_bound.clear();
        self.suffix_min_bound.resize(self.ranked.len() + 1, floor);
        let mut best = floor;
        for (slot, &(dist, id)) in self
            .suffix_min_bound
            .iter_mut()
            .zip(self.ranked.iter())
            .rev()
        {
            let radius = self.chunk_geo.get(id as usize).map_or(0.0, |g| g.1);
            best = best.min((dist - radius).max(0.0));
            *slot = best;
        }
        debug_assert!(
            self.suffix_min_bound
                .windows(2)
                .all(|w| w.first() <= w.get(1)),
            "suffix-min bound must be non-decreasing along the ranked order"
        );
    }

    /// Total chunks this ranking covers — expanded chunks plus the member
    /// chunks of every still-pending cell. A session is exhausted only
    /// when its cursor reaches this.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the store has no chunks.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Chunks already expanded into the scan order (equal to
    /// [`len`](Self::len) for flat rankings).
    pub fn expanded_len(&self) -> usize {
        self.ranked.len()
    }

    /// Whether any coarse cell is still awaiting expansion.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Centroid distance evaluations spent so far: `n_chunks` for a flat
    /// ranking; `n_cells` plus one per expanded member chunk for a
    /// two-level ranking — the quantity two-level ranking exists to
    /// shrink.
    pub fn centroid_evals(&self) -> u64 {
        self.evals
    }

    /// Expands the nearest pending cell: ranks its member chunks by
    /// centroid distance, appends them to the scan order, and rebuilds the
    /// suffix bounds. Returns `false` when nothing is pending.
    ///
    /// Exactness survives expansion: every new chunk's bound dominates its
    /// cell's bound, and the remaining pending floor can only rise, so
    /// [`remaining_bound`](Self::remaining_bound) never decreases at any
    /// consumed position — a fired to-completion proof stays fired.
    pub fn expand_wave(&mut self, query: &Vector) -> bool {
        let Some(cell) = self.pending.pop() else {
            return false;
        };
        let start = self.ranked.len();
        self.ranked.extend(cell.members.iter().map(|&chunk| {
            let dist = self
                .chunk_geo
                .get(chunk as usize)
                .map_or(f32::INFINITY, |g| g.0.dist(query));
            (dist, chunk)
        }));
        self.evals += cell.members.len() as u64;
        if let Some(wave) = self.ranked.get_mut(start..) {
            wave.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        }
        self.rebuild_suffix();
        true
    }

    /// Chunk ids in ranked (scan) order — the expanded chunks only; a
    /// two-level ranking grows this wave by wave.
    pub fn order(&self) -> Vec<usize> {
        self.ranked.iter().map(|&(_, i)| i as usize).collect()
    }

    /// The tail of the scan order from rank `from` on — what a session
    /// streams after (re)opening its source mid-scan or after a wave
    /// expansion.
    pub fn order_from(&self, from: usize) -> Vec<usize> {
        self.ranked
            .get(from..)
            .unwrap_or(&[])
            .iter()
            .map(|&(_, i)| i as usize)
            .collect()
    }

    /// The chunk id at `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= self.len()`; ranks come from iterating the
    /// ranking itself, so an out-of-range rank is a caller bug.
    pub fn chunk_at(&self, rank: usize) -> usize {
        // lint:allow(panic.index): rank < len is a documented precondition
        self.ranked[rank].1 as usize
    }

    /// The query-to-centroid distance of the chunk at `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= self.len()` (see [`Self::chunk_at`]).
    pub fn centroid_dist(&self, rank: usize) -> f32 {
        // lint:allow(panic.index): rank < len is a documented precondition
        self.ranked[rank].0
    }

    /// Descriptors held by chunk `chunk_id` (0 for out-of-range ids).
    pub fn count_of(&self, chunk_id: usize) -> u32 {
        self.counts.get(chunk_id).copied().unwrap_or(0)
    }

    /// Best lower bound on any descriptor in the chunks still unread after
    /// `processed` chunks (`+∞` once every chunk has been read).
    pub fn remaining_bound(&self, processed: usize) -> f32 {
        self.suffix_min_bound
            .get(processed)
            .copied()
            .unwrap_or(f32::INFINITY)
    }

    /// Modelled cost of reading and ranking the chunk index.
    pub fn index_read_time(&self) -> VirtualDuration {
        self.index_read_time
    }

    /// Splits a **flat** ranking into one per-shard leg ranking: leg `s`
    /// holds exactly the ranked entries whose chunk `owner_of` maps to `s`,
    /// in the same relative order as the global ranking. Chunks whose owner
    /// is out of range (e.g. `u32::MAX` for "no live owner") appear in no
    /// leg — the scatter–gather driver accounts for them as lost up front.
    ///
    /// Legs carry no index-read charge and no centroid evaluations: those
    /// are global, paid once by the gather side. Each leg's suffix bounds
    /// are rebuilt over its own entries, which keeps them valid (a subset's
    /// suffix minimum only over-approximates the global one, and legs are
    /// never asked to prove completion — the gather merge is).
    pub fn split_by_owner(&self, owner_of: &[u32], n_shards: usize) -> Vec<ChunkRanking> {
        debug_assert!(
            !self.has_pending(),
            "split_by_owner requires a flat (fully expanded) ranking"
        );
        let mut legs: Vec<ChunkRanking> = (0..n_shards)
            .map(|_| ChunkRanking {
                counts: self.counts.clone(),
                chunk_geo: self.chunk_geo.clone(),
                ..ChunkRanking::default()
            })
            .collect();
        for &(dist, chunk) in &self.ranked {
            let owner = owner_of.get(chunk as usize).copied().unwrap_or(u32::MAX);
            if let Some(leg) = legs.get_mut(owner as usize) {
                leg.ranked.push((dist, chunk));
            }
        }
        for leg in &mut legs {
            leg.total = leg.ranked.len();
            leg.rebuild_suffix();
        }
        legs
    }
}

/// The stop-rule predicate shared by [`SearchSession::evaluate_rule`] and
/// the scatter–gather merge: `Some(proves)` when `rule` is satisfied by the
/// given state (`proves` = the stop certifies exactness), `None` to keep
/// scanning. Factored out so the fleet's gather coordinator evaluates the
/// *same* predicate over its merged state as a solo session does over its
/// own — there is exactly one stop-rule implementation to drift.
pub fn rule_fires(
    rule: StopRule,
    cursor: usize,
    last_completed: Option<VirtualDuration>,
    neighbors_full: bool,
    kth_dist: f32,
    remaining_bound: f32,
) -> Option<bool> {
    match rule {
        StopRule::Chunks(n) => (cursor >= n).then_some(false),
        StopRule::VirtualTime(t) => last_completed.and_then(|c| (c >= t).then_some(false)),
        StopRule::ToCompletion => (neighbors_full && remaining_bound > kth_dist).then_some(true),
        StopRule::ToCompletionEps(eps) => {
            (neighbors_full && remaining_bound * (1.0 + eps) > kth_dist).then_some(eps <= 0.0)
        }
    }
}

/// Debug-build bookkeeping for the session invariants (§4.3's correctness
/// argument, mechanised): no chunk is ever scanned twice, the kth-best
/// distance never increases, modelled completion times never decrease, and
/// a fired stop rule stays fired. Compiled out of release builds entirely —
/// the struct and every check vanish under `cfg(debug_assertions)`.
#[cfg(debug_assertions)]
#[derive(Debug)]
struct StepInvariants {
    /// One flag per chunk id: set when the chunk is scanned.
    seen: Vec<bool>,
    /// kth-best distance after the previous step (∞ before any step).
    last_kth: f32,
    /// Virtual completion time of the previous step.
    last_completed_at: Option<VirtualDuration>,
}

#[cfg(debug_assertions)]
impl StepInvariants {
    fn new(n_chunks: usize) -> StepInvariants {
        StepInvariants {
            seen: vec![false; n_chunks],
            last_kth: f32::INFINITY,
            last_completed_at: None,
        }
    }

    fn mark_seen(&mut self, chunk_id: usize) {
        match self.seen.get_mut(chunk_id) {
            Some(flag) => {
                debug_assert!(!*flag, "chunk {chunk_id} scanned twice in one session");
                *flag = true;
            }
            None => debug_assert!(false, "chunk id {chunk_id} out of ranked range"),
        }
    }

    /// A skipped chunk is consumed exactly like a scanned one: it can
    /// never be scanned (or skipped) again.
    fn on_skip(&mut self, chunk_id: usize) {
        self.mark_seen(chunk_id);
    }

    fn on_step(&mut self, chunk_id: usize, kth: f32, completed_at: VirtualDuration) {
        self.mark_seen(chunk_id);
        debug_assert!(
            kth <= self.last_kth,
            "kth-best distance increased across a step ({} -> {kth})",
            self.last_kth
        );
        self.last_kth = kth;
        if let Some(prev) = self.last_completed_at {
            debug_assert!(
                completed_at >= prev,
                "virtual completion time went backwards"
            );
        }
        self.last_completed_at = Some(completed_at);
    }
}

/// A resumable query execution: step 2 of §4.3, one chunk at a time.
///
/// A session owns everything it needs — ranking, neighbour set, virtual
/// clock, log, and a handle to its [`ChunkSource`] — so it can be driven
/// incrementally ([`step`](Self::step)), to its own stop rule
/// ([`run_to_stop`](Self::run_to_stop)), or past rule after rule
/// ([`evaluate_rules`](Self::evaluate_rules)). The underlying stream is
/// opened lazily at the first `step`, so a store whose files vanish
/// between session construction and stepping surfaces a clean `Err`.
pub struct SearchSession {
    /// `None` for a *detached* session — one driven by an external
    /// scheduler through [`step_with`](Self::step_with) instead of pulling
    /// chunks itself.
    source: Option<Arc<dyn ChunkSource>>,
    /// Opened at the first [`step`](Self::step); re-opened per wave for
    /// two-level rankings.
    stream: Option<Box<dyn ChunkStream>>,
    ranking: ChunkRanking,
    model: DiskModel,
    query: Vector,
    params: SearchParams,
    clock: PipelineClock,
    neighbors: NeighborSet,
    log: SearchLog,
    /// `Some` for a quantized (ADC) session — see
    /// [`open_quantized`](Self::open_quantized).
    adc: Option<AdcScan>,
    /// `Some` for a session pinned to a mutated epoch — see
    /// [`apply_delta`](Self::apply_delta). Base rows whose ids are
    /// tombstoned here are filtered out of every scan.
    delta: Option<Arc<FoldedDelta>>,
    wall_start: std::time::Instant,
    exhausted: bool,
    skip: SkipPolicy,
    #[cfg(debug_assertions)]
    invariants: StepInvariants,
}

/// State of an asymmetric-distance (quantized) scan: the prepared query,
/// the raw store handle the rerank tail reads exact vectors from, and the
/// chunk each retained candidate was scanned in.
struct AdcScan {
    /// The query pre-transformed for the store's codec (affine params for
    /// SQ8, a per-subspace lookup table for PQ).
    prep: PreparedQuery,
    /// Raw (f32) view of the store, for the exact rerank tail.
    raw: ChunkStore,
    /// Chunk id each currently-or-once retained candidate came from. Only
    /// accepted offers are recorded, so this stays small (acceptance decays
    /// as the kth distance tightens).
    id_chunk: BTreeMap<u32, u32>,
    /// Scratch distance buffer for the blocked ADC kernel.
    dists: Vec<f32>,
}

impl SearchSession {
    /// A session over the default source — a [`PrefetchSource`] with the
    /// window depth from `params`, the same pipelined reader the one-shot
    /// search always used.
    pub fn open(
        store: &ChunkStore,
        model: &DiskModel,
        query: &Vector,
        params: &SearchParams,
    ) -> SearchSession {
        let source = Arc::new(PrefetchSource::new(store, params.prefetch_depth));
        SearchSession::with_source(store, model, query, params, source)
    }

    /// A session that scans **quantized** chunk payloads with the
    /// asymmetric-distance kernels instead of raw `f32` records.
    ///
    /// `store` must be a v3 (quantized) store. The session streams the
    /// compact code region (modelled bytes shrink accordingly), retains
    /// the best `rerank_mult · k` ADC candidates, and — after the scan —
    /// [`rerank_tail`](Self::rerank_tail) re-scores them against the raw
    /// `f32` records so the final top-`k` uses exact distances. With
    /// `coarse` the ranking is two-level ([`ChunkRanking::rank_two_level`]).
    ///
    /// Completion proofs from this session are with respect to the ADC
    /// distances (the scanned representation); treat `completed` as "the
    /// scan provably saw every chunk that could matter", not as exactness
    /// of the approximate distances themselves.
    pub fn open_quantized(
        store: &ChunkStore,
        model: &DiskModel,
        query: &Vector,
        params: &SearchParams,
        rerank_mult: usize,
        coarse: Option<&CoarseQuantizer>,
    ) -> Result<SearchSession> {
        let quant = store.quantized_view()?;
        let codec = quant.codec().cloned().ok_or_else(|| {
            eff2_storage::Error::Inconsistent("quantized view carries no codec".to_string())
        })?;
        let ranking = match coarse {
            Some(c) => ChunkRanking::rank_two_level(&quant, model, query, c),
            None => ChunkRanking::rank(&quant, model, query),
        };
        let source = Arc::new(PrefetchSource::new(&quant, params.prefetch_depth));
        let mut session = SearchSession::from_parts(ranking, model, query, params, Some(source));
        session.neighbors = NeighborSet::new(params.k.saturating_mul(rerank_mult.max(1)));
        session.adc = Some(AdcScan {
            prep: codec.prepare(query.as_array()),
            raw: store.raw_view(),
            id_chunk: BTreeMap::new(),
            dists: Vec::new(),
        });
        Ok(session)
    }

    /// A session drawing chunks from an explicit source (shared resident
    /// cache, plain file reader, …). Ranking happens here; no chunk I/O
    /// until the first [`step`](Self::step).
    pub fn with_source(
        store: &ChunkStore,
        model: &DiskModel,
        query: &Vector,
        params: &SearchParams,
        source: Arc<dyn ChunkSource>,
    ) -> SearchSession {
        let ranking = ChunkRanking::rank(store, model, query);
        SearchSession::from_parts(ranking, model, query, params, Some(source))
    }

    /// A session over a pre-computed ranking (see
    /// [`ChunkRanking::rank_into`] for buffer reuse); behaviourally
    /// identical to [`with_source`](Self::with_source).
    pub fn from_ranking(
        ranking: ChunkRanking,
        model: &DiskModel,
        query: &Vector,
        params: &SearchParams,
        source: Arc<dyn ChunkSource>,
    ) -> SearchSession {
        SearchSession::from_parts(ranking, model, query, params, Some(source))
    }

    /// A *detached* session: no chunk source of its own. An external
    /// driver asks [`next_wanted`](Self::next_wanted) which chunk to
    /// deliver and feeds it through [`step_with`](Self::step_with) — the
    /// serving scheduler's mode, where one fetched chunk may feed many
    /// sessions. Calling [`step`](Self::step) on a detached session is an
    /// error.
    pub fn detached(
        store: &ChunkStore,
        model: &DiskModel,
        query: &Vector,
        params: &SearchParams,
    ) -> SearchSession {
        let ranking = ChunkRanking::rank(store, model, query);
        SearchSession::from_parts(ranking, model, query, params, None)
    }

    /// [`detached`](Self::detached) over a pre-computed ranking.
    pub fn detached_from_ranking(
        ranking: ChunkRanking,
        model: &DiskModel,
        query: &Vector,
        params: &SearchParams,
    ) -> SearchSession {
        SearchSession::from_parts(ranking, model, query, params, None)
    }

    fn from_parts(
        ranking: ChunkRanking,
        model: &DiskModel,
        query: &Vector,
        params: &SearchParams,
        source: Option<Arc<dyn ChunkSource>>,
    ) -> SearchSession {
        let clock = PipelineClock::start_at(ranking.index_read_time());
        let log = SearchLog {
            index_read_time: ranking.index_read_time(),
            ..SearchLog::default()
        };
        // The seen-set is indexed by chunk *id*, which for a per-shard leg
        // ranking (split_by_owner) spans the whole store even though the
        // leg ranks only a subset — size it by the id space, not the rank
        // count.
        #[cfg(debug_assertions)]
        let invariants = StepInvariants::new(ranking.counts.len().max(ranking.len()));
        SearchSession {
            source,
            stream: None,
            ranking,
            model: *model,
            query: *query,
            params: *params,
            clock,
            neighbors: NeighborSet::new(params.k),
            log,
            adc: None,
            delta: None,
            // lint:allow(det.wall_clock): log.wall is informational; it never feeds the virtual clock or modelled figures
            wall_start: std::time::Instant::now(),
            exhausted: false,
            skip: SkipPolicy::Abort,
            #[cfg(debug_assertions)]
            invariants,
        }
    }

    /// Pins this session to a mutated epoch by applying the epoch's folded
    /// delta, **before the first step**:
    ///
    /// * the live delta rows are scanned right now, as one delta-chunk
    ///   read — distances offered into the neighbour set in delta order,
    ///   the read charged to the pipeline clock like any chunk (I/O of the
    ///   record-layout bytes overlapped with the scan CPU);
    /// * every later chunk scan filters out base rows whose ids the delta
    ///   tombstones (deleted or superseded descriptors).
    ///
    /// An empty delta is a strict no-op: the session stays on the fused
    /// unfiltered kernel and remains bit-identical to a pre-epoch session
    /// — that is the read-compat contract for v2/v3 stores opened through
    /// the epoch layer. Quantized (ADC) sessions also honour tombstones;
    /// their rerank tail re-reads raw rows of *accepted* candidates only,
    /// which by construction are never tombstoned.
    ///
    /// Completion stays exact over the epoch's live set: the remaining
    /// bound is a lower bound over a superset of the live base rows, and
    /// the delta rows are all consumed up front.
    pub fn apply_delta(&mut self, delta: &Arc<FoldedDelta>) {
        debug_assert_eq!(
            self.log.chunks_read, 0,
            "apply_delta must run before the scan"
        );
        if delta.is_empty() {
            return;
        }
        if !delta.inserts.is_empty() {
            for (id, vector) in &delta.inserts {
                self.neighbors
                    .offer(*id, l2_sq(self.query.as_array(), vector.as_array()));
            }
            let io = self.model.io_time(delta.scan_bytes());
            let cpu = self.model.scan_time(delta.inserts.len());
            let _ = self.clock.chunk_overlapped(io, cpu);
            self.log.bytes_read += delta.scan_bytes();
            self.log.descriptors_scanned += delta.inserts.len() as u64;
        }
        if !delta.tombstones.is_empty() {
            self.delta = Some(Arc::clone(delta));
        }
    }

    /// Sets how the session reacts to permanently unreadable chunks (the
    /// default is [`SkipPolicy::Abort`], the historical fail-fast).
    pub fn set_skip_policy(&mut self, policy: SkipPolicy) {
        self.skip = policy;
    }

    /// The session's current [`SkipPolicy`].
    pub fn skip_policy(&self) -> SkipPolicy {
        self.skip
    }

    /// The ranking this session scans in.
    pub fn ranking(&self) -> &ChunkRanking {
        &self.ranking
    }

    /// The parameters the session was opened with.
    pub fn params(&self) -> &SearchParams {
        &self.params
    }

    /// The log so far (events, counters; `completed`/`total_virtual` are
    /// only finalised by [`result_for_rule`](Self::result_for_rule) /
    /// [`into_result`](Self::into_result)).
    pub fn log(&self) -> &SearchLog {
        &self.log
    }

    /// Chunks processed so far.
    pub fn chunks_read(&self) -> usize {
        self.log.chunks_read
    }

    /// Current kth-best distance (∞ until `k` neighbours are held).
    pub fn kth_dist(&self) -> f32 {
        self.neighbors.kth_dist()
    }

    /// The current neighbour set as raw `(id, dist_sq)` entries (see
    /// [`NeighborSet::entries`]) — what a scatter–gather merge re-offers
    /// into the global set to stay bit-identical to a solo scan.
    pub fn neighbor_entries(&self) -> Vec<(u32, f32)> {
        self.neighbors.entries()
    }

    /// A cheap upper estimate of the chunks this session still has to
    /// consume before its stop rule can fire: the explicit budget remainder
    /// for `Chunks(n)`, the whole unread tail otherwise. Schedulers use it
    /// to break deadline ties toward the query that can finish soonest
    /// (shortest-remaining-work) instead of falling back to admission
    /// order.
    pub fn remaining_work_estimate(&self) -> usize {
        let cursor = self.rank_cursor();
        match self.params.stop {
            StopRule::Chunks(n) => n.min(self.ranking.len()).saturating_sub(cursor),
            _ => self.ranking.len().saturating_sub(cursor),
        }
    }

    /// Position in the ranked order the scan has consumed up to: chunks
    /// actually scanned plus chunks lost to faults and skipped. With zero
    /// faults this is exactly `chunks_read` — the fault-free path is
    /// untouched.
    fn rank_cursor(&self) -> usize {
        self.log.chunks_read + self.log.degradation.chunks_lost
    }

    /// Whether every ranked chunk has been processed (scanned or skipped).
    pub fn is_exhausted(&self) -> bool {
        self.exhausted || self.rank_cursor() == self.ranking.len()
    }

    /// The chunk id this session wants next (the next unread chunk in its
    /// ranked order), or `None` once the ranking is exhausted.
    ///
    /// Like [`step`](Self::step) this is mechanical — it does not consult
    /// the stop rule. An external driver deciding whether to keep feeding
    /// the session should check [`stop_satisfied`](Self::stop_satisfied)
    /// first; `next_wanted` only says *which* chunk a continued scan
    /// consumes.
    ///
    /// For a two-level ranking whose expanded waves are all consumed this
    /// returns `None` until the driver expands the next wave itself
    /// (`session.ranking` is read-only here); detached drivers use flat
    /// rankings, where this never arises.
    pub fn next_wanted(&self) -> Option<usize> {
        if self.is_exhausted() || self.rank_cursor() >= self.ranking.expanded_len() {
            None
        } else {
            Some(self.ranking.chunk_at(self.rank_cursor()))
        }
    }

    /// Consumes the next ranked chunk *without scanning it*: the chunk is
    /// recorded in the log's degradation report and the scan continues
    /// with the following chunk. `charge` is the modelled time the failed
    /// delivery cost (retry timeouts, backoff), charged to the pipeline
    /// clock as I/O with no overlapping CPU. Returns the skipped chunk id.
    ///
    /// This is the primitive behind [`SkipPolicy::SkipUnavailable`]; an
    /// external driver (the serving scheduler) calls it directly when it
    /// abandons a fetch.
    pub fn skip_unavailable(&mut self, charge: VirtualDuration) -> Result<usize> {
        if self.is_exhausted() {
            return Err(eff2_storage::Error::Inconsistent(
                "no ranked chunk left to skip".to_string(),
            ));
        }
        let id = self.ranking.chunk_at(self.rank_cursor());
        #[cfg(debug_assertions)]
        self.invariants.on_skip(id);
        let _ = self.clock.chunk_overlapped(charge, VirtualDuration::ZERO);
        self.log.degradation.chunks_lost += 1;
        self.log.degradation.descriptors_lost += u64::from(self.ranking.count_of(id));
        self.log.degradation.lost_chunks.push(id);
        Ok(id)
    }

    /// Advances the scan by exactly one chunk and returns its event, or
    /// `None` once every ranked chunk has been processed.
    ///
    /// Stepping is mechanical: it does **not** consult the stop rule, so
    /// callers can read past a satisfied rule (that is what
    /// [`evaluate_rules`](Self::evaluate_rules) does). Use
    /// [`stop_satisfied`](Self::stop_satisfied) to drive a rule-respecting
    /// loop, or [`run_to_stop`](Self::run_to_stop) to do both at once.
    pub fn step(&mut self) -> Result<Option<&ChunkEvent>> {
        #[cfg(debug_assertions)]
        let stop_was_fired = self.stop_satisfied();
        loop {
            if self.is_exhausted() {
                self.exhausted = true;
                return Ok(None);
            }
            // Two-level ranking: once the scan has consumed every expanded
            // chunk, expand the next-nearest cell and stream its member
            // chunks as a fresh wave. Flat rankings never take this branch
            // (expanded == total, and is_exhausted fired above).
            if self.rank_cursor() >= self.ranking.expanded_len() {
                let query = self.query;
                if !self.ranking.expand_wave(&query) {
                    self.exhausted = true;
                    return Ok(None);
                }
                self.stream = None;
            }
            let Some(source) = self.source.as_ref() else {
                return Err(eff2_storage::Error::Inconsistent(
                    "detached session has no chunk source: drive it with step_with".to_string(),
                ));
            };
            let stream = match self.stream.as_mut() {
                Some(s) => s,
                None => self
                    .stream
                    .insert(source.open_stream(self.ranking.order_from(self.rank_cursor()))?),
            };
            let Some(item) = stream.next_chunk() else {
                // This wave's stream is done. If a pending cell remains
                // (and the wave really was consumed), loop back to expand
                // it; otherwise the historical semantics hold: a drained
                // stream exhausts the session.
                self.stream = None;
                if self.ranking.has_pending() && self.rank_cursor() >= self.ranking.expanded_len() {
                    continue;
                }
                self.exhausted = true;
                return Ok(None);
            };
            match item {
                Ok(chunk) => {
                    let delay = stream.take_injected_delay();
                    self.ingest(&chunk, delay);
                    #[cfg(debug_assertions)]
                    debug_assert!(
                        !stop_was_fired || self.stop_satisfied(),
                        "stop rules must be monotone: a fired rule stays fired"
                    );
                    return Ok(self.log.events.last());
                }
                Err(e)
                    if self.skip == SkipPolicy::SkipUnavailable
                        && e.class() == ErrorClass::Permanent =>
                {
                    // The failed delivery's modelled cost travels on the
                    // error when a retry layer produced it.
                    let spent = match &e {
                        eff2_storage::Error::ChunkLost { spent, .. } => *spent,
                        _ => VirtualDuration::ZERO,
                    };
                    self.skip_unavailable(spent)?;
                    // A lost chunk yields no event but does consume the
                    // ranked order (and any chunk budget): re-check the
                    // stop rule before scanning the next chunk.
                    if self.stop_satisfied() {
                        return Ok(None);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Advances the scan by feeding `chunk` in from outside — the
    /// scheduler-driven twin of [`step`](Self::step). The chunk must be
    /// exactly the one [`next_wanted`](Self::next_wanted) names (payloads
    /// arrive in ranked order no matter who fetches them), otherwise the
    /// session refuses with [`Error::Inconsistent`].
    ///
    /// All accounting — fused-kernel scan, per-query pipeline clock, log,
    /// invariants — is identical to [`step`](Self::step), so a session fed
    /// by an external driver produces bit-identical results to one pulling
    /// from its own source, regardless of how many other sessions shared
    /// the fetch.
    ///
    /// [`Error::Inconsistent`]: eff2_storage::Error::Inconsistent
    pub fn step_with(&mut self, chunk: &SourcedChunk) -> Result<Option<&ChunkEvent>> {
        if self.is_exhausted() {
            self.exhausted = true;
            return Ok(None);
        }
        #[cfg(debug_assertions)]
        let stop_was_fired = self.stop_satisfied();
        let wanted = self.ranking.chunk_at(self.rank_cursor());
        if chunk.id != wanted {
            return Err(eff2_storage::Error::Inconsistent(format!(
                "session wants chunk {wanted} next, was fed chunk {}",
                chunk.id
            )));
        }
        self.ingest(chunk, VirtualDuration::ZERO);
        #[cfg(debug_assertions)]
        debug_assert!(
            !stop_was_fired || self.stop_satisfied(),
            "stop rules must be monotone: a fired rule stays fired"
        );
        Ok(self.log.events.last())
    }

    /// The shared advance: scan `chunk`, charge the clock, log the event.
    /// `injected_delay` is extra modelled I/O latency the delivery
    /// suffered (fault-injection spikes, retry costs); it is zero on every
    /// fault-free path, and `x + 0.0` is bit-identical to `x`, so the
    /// fault-free accounting is untouched.
    fn ingest(&mut self, chunk: &SourcedChunk, injected_delay: VirtualDuration) {
        if let Some(adc) = self.adc.as_mut() {
            // Quantized scan: blocked ADC distances over the chunk's code
            // region. Offers go through the explicit loop (not the fused
            // kernel) so accepted candidates can be mapped back to their
            // chunk for the exact rerank tail; the retained set is
            // bit-identical to the fused kernel's (same distances, same
            // total order).
            adc_l2_sq_batch(&adc.prep, &chunk.payload.codes, &mut adc.dists);
            debug_assert_eq!(adc.dists.len(), chunk.payload.ids.len());
            let delta = self.delta.as_deref();
            for (&id, &d) in chunk.payload.ids.iter().zip(adc.dists.iter()) {
                if delta.is_some_and(|d| d.tombstones.contains(&id)) {
                    continue;
                }
                if self.neighbors.offer(id, d) {
                    adc.id_chunk.insert(id, chunk.id as u32);
                }
            }
        } else if let Some(delta) = self.delta.as_deref() {
            // Epoch-pinned scan: same distances as the fused kernel, but
            // rows the delta tombstones (deleted or superseded in this
            // epoch) never reach the neighbour set. The explicit loop is
            // bit-identical to the fused kernel on the surviving rows —
            // the same precedent as the ADC offer loop above.
            for (row, &id) in as_rows(&chunk.payload.packed)
                .iter()
                .zip(chunk.payload.ids.iter())
            {
                if delta.tombstones.contains(&id) {
                    continue;
                }
                self.neighbors.offer(id, l2_sq(self.query.as_array(), row));
            }
        } else {
            // Scan the chunk against the query (fused block kernel:
            // blocked distances offered straight into the set).
            scan_block_into(
                self.query.as_array(),
                &chunk.payload.packed,
                &chunk.payload.ids,
                &mut self.neighbors,
            );
        }

        let io = self.model.io_time(chunk.bytes_read) + injected_delay;
        let cpu = self.model.scan_time(chunk.payload.len());
        let completed_at = self.clock.chunk_overlapped(io, cpu);

        #[cfg(debug_assertions)]
        self.invariants
            .on_step(chunk.id, self.neighbors.kth_dist(), completed_at);

        let rank = self.log.chunks_read;
        self.log.chunks_read += 1;
        self.log.descriptors_scanned += chunk.payload.len() as u64;
        self.log.bytes_read += chunk.bytes_read;
        self.log.events.push(ChunkEvent {
            rank,
            chunk_id: chunk.id,
            count: chunk.payload.len() as u32,
            bytes_read: chunk.bytes_read,
            completed_at,
            kth_dist: self.neighbors.kth_dist(),
            topk_ids: if self.params.log_snapshots {
                self.neighbors.sorted_ids()
            } else {
                Vec::new()
            },
        });
    }

    /// Evaluates `rule` against the current session state: `Some(proves)`
    /// if the rule is satisfied (where `proves` says whether satisfying it
    /// certifies the result — only the completion rules ever do), `None`
    /// if the scan should continue.
    ///
    /// The predicates are monotone: once a rule fires it stays fired as
    /// further chunks are processed (the remaining bound never decreases,
    /// the kth distance never increases), which is what lets
    /// [`evaluate_rules`](Self::evaluate_rules) serve many rules from one
    /// scan.
    pub fn evaluate_rule(&self, rule: StopRule) -> Option<bool> {
        // Lost chunks consume the scan budget exactly like scanned ones:
        // `Chunks(n)` counts them toward n, and the remaining bound is
        // taken past them (an honest account — their descriptors are
        // reported lost, not silently still pending).
        let read = self.rank_cursor();
        rule_fires(
            rule,
            read,
            self.log.events.last().map(|e| e.completed_at),
            self.neighbors.is_full(),
            self.neighbors.kth_dist(),
            self.ranking.remaining_bound(read),
        )
    }

    /// Whether this session's own stop rule says to stop scanning. A
    /// `k = 0` query stops before reading anything — its empty answer is
    /// trivially exact.
    pub fn stop_satisfied(&self) -> bool {
        self.params.k == 0 || self.is_exhausted() || self.evaluate_rule(self.params.stop).is_some()
    }

    /// Drives [`step`](Self::step) until
    /// [`stop_satisfied`](Self::stop_satisfied) or exhaustion.
    pub fn run_to_stop(&mut self) -> Result<()> {
        while !self.stop_satisfied() {
            if self.step()?.is_none() {
                break;
            }
        }
        Ok(())
    }

    /// Re-scores the retained ADC candidates against the raw `f32`
    /// records and shrinks the neighbour set to the final `k` — the
    /// **exact rerank tail** of a quantized search. A no-op for
    /// non-quantized sessions.
    ///
    /// Each chunk holding a surviving candidate is read once from the raw
    /// region (charged to the virtual clock and `bytes_read` like any
    /// other chunk; also tallied separately in the log's `rerank_bytes` /
    /// `rerank_chunks`), and every candidate is re-scored with the exact
    /// lane kernel — bit-identical to the distance an uncompressed scan
    /// would have computed. When the candidate pool provably contains the
    /// true top-`k` (full budget with `rerank_mult · k ≥` collection
    /// size, or simply a deep enough pool in practice), the reranked
    /// answer equals the uncompressed search's answer, id for id.
    ///
    /// Terminal: the session's ADC state is consumed; call it once, after
    /// the scan.
    pub fn rerank_tail(&mut self) -> Result<()> {
        let Some(adc) = self.adc.take() else {
            return Ok(());
        };
        // Group the surviving candidates by source chunk. BTreeMap gives a
        // deterministic (ascending chunk id) read order.
        let mut by_chunk: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for id in self.neighbors.sorted_ids() {
            if let Some(&chunk) = adc.id_chunk.get(&id) {
                by_chunk.entry(chunk).or_default().push(id);
            }
        }
        let mut exact = NeighborSet::new(self.params.k);
        let mut reader = adc.raw.reader()?;
        let mut payload = ChunkPayload::default();
        for (&chunk, ids) in by_chunk.iter_mut() {
            ids.sort_unstable();
            let bytes = reader.read_chunk(chunk as usize, &mut payload)?;
            let io = self.model.io_time(bytes);
            let cpu = self.model.scan_time(ids.len());
            let _ = self.clock.chunk_overlapped(io, cpu);
            self.log.bytes_read += bytes;
            self.log.rerank_bytes += bytes;
            self.log.rerank_chunks += 1;
            let rows = as_rows(&payload.packed);
            for (row, &id) in rows.iter().zip(payload.ids.iter()) {
                if ids.binary_search(&id).is_ok() {
                    exact.offer(id, l2_sq(self.query.as_array(), row));
                }
            }
        }
        self.neighbors = exact;
        Ok(())
    }

    /// The `completed` flag the log should carry if the search stopped
    /// *now* under `rule`: a `k = 0` answer is trivially exact, exhausting
    /// every chunk is completion, and the completion rules certify their
    /// own stop.
    fn completed_for(&self, rule: StopRule) -> bool {
        self.params.k == 0
            || self.rank_cursor() == self.ranking.len()
            || self.evaluate_rule(rule) == Some(true)
    }

    /// A [`SearchResult`] snapshot of the current state, finalised as if
    /// the search had stopped here under `rule`. Cheap relative to the
    /// scan (clones the log); the session remains usable.
    pub fn result_for_rule(&self, rule: StopRule) -> SearchResult {
        let mut log = self.log.clone();
        log.completed = self.completed_for(rule);
        log.total_virtual = self.clock.now().max(self.ranking.index_read_time());
        log.centroid_evals = self.ranking.centroid_evals();
        log.wall = self.wall_start.elapsed();
        SearchResult {
            neighbors: self.neighbors.sorted(),
            log,
        }
    }

    /// Consumes the session into its final result under its own stop rule.
    pub fn into_result(self) -> SearchResult {
        self.into_result_and_ranking().0
    }

    /// [`into_result`](Self::into_result) that also hands the
    /// [`ChunkRanking`] back for reuse — the batch drivers recycle it
    /// through [`ChunkRanking::rank_into`] so each worker allocates ranking
    /// buffers once, not once per query.
    pub fn into_result_and_ranking(mut self) -> (SearchResult, ChunkRanking) {
        self.log.completed = self.completed_for(self.params.stop);
        self.log.total_virtual = self.clock.now().max(self.ranking.index_read_time());
        self.log.centroid_evals = self.ranking.centroid_evals();
        self.log.wall = self.wall_start.elapsed();
        let ranking = std::mem::take(&mut self.ranking);
        let result = SearchResult {
            neighbors: self.neighbors.sorted(),
            log: self.log,
        };
        (result, ranking)
    }

    /// Answers every rule in `rules` from this one session — the
    /// collection is scanned **once**, and each rule's result is
    /// snapshotted the moment its predicate first fires, so every entry is
    /// identical to an individual [`crate::search::search`] run with that
    /// rule (the session's own `params.stop` is not consulted).
    ///
    /// Rules the scan exhausts without firing (e.g. `Chunks(n)` beyond the
    /// store, an unreachable `VirtualTime`) receive the full-scan result,
    /// exactly as their individual searches would.
    pub fn evaluate_rules(mut self, rules: &[StopRule]) -> Result<Vec<SearchResult>> {
        let mut results: Vec<Option<SearchResult>> = (0..rules.len()).map(|_| None).collect();
        loop {
            for (slot, &rule) in results.iter_mut().zip(rules) {
                if slot.is_none() && (self.params.k == 0 || self.evaluate_rule(rule).is_some()) {
                    *slot = Some(self.result_for_rule(rule));
                }
            }
            if results.iter().all(Option::is_some) {
                break;
            }
            if self.step()?.is_none() {
                break;
            }
        }
        Ok(results
            .into_iter()
            .zip(rules)
            .map(|(slot, &rule)| slot.unwrap_or_else(|| self.result_for_rule(rule)))
            .collect())
    }
}

impl std::fmt::Debug for SearchSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchSession")
            .field("chunks_read", &self.log.chunks_read)
            .field("n_chunks", &self.ranking.len())
            .field("kth_dist", &self.neighbors.kth_dist())
            .field("exhausted", &self.exhausted)
            .finish_non_exhaustive()
    }
}

/// Evaluates many stop rules for one query in a single scan of the
/// collection (see [`SearchSession::evaluate_rules`]). `params.stop` is
/// ignored — `rules` says what to answer.
pub fn evaluate_stop_rules(
    store: &ChunkStore,
    model: &DiskModel,
    query: &Vector,
    params: &SearchParams,
    rules: &[StopRule],
) -> Result<Vec<SearchResult>> {
    SearchSession::open(store, model, query, params).evaluate_rules(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunkers::{ChunkFormer, SrTreeChunker};
    use eff2_descriptor::{Descriptor, DescriptorSet};
    use eff2_storage::source::FileSource;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eff2_session_{tag}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn lumpy_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| {
                let blob = (i % 5) as f32 * 20.0;
                let mut v = Vector::splat(blob);
                v[0] += ((i * 31) % 23) as f32 * 0.3;
                v[3] -= ((i * 17) % 19) as f32 * 0.2;
                Descriptor::new(i as u32, v)
            })
            .collect()
    }

    fn build_store(tag: &str, set: &DescriptorSet, leaf: usize) -> ChunkStore {
        let formation = SrTreeChunker { leaf_size: leaf }.form(set);
        ChunkStore::create(&tmp_dir(tag), "ix", set, &formation.chunks, 512).expect("create")
    }

    #[test]
    fn ranking_matches_event_order() {
        let set = lumpy_set(300);
        let store = build_store("rankorder", &set, 30);
        let model = DiskModel::ata_2005();
        let q = Vector::splat(40.0);
        let ranking = ChunkRanking::rank(&store, &model, &q);
        assert_eq!(ranking.len(), store.n_chunks());
        for rank in 1..ranking.len() {
            assert!(ranking.centroid_dist(rank) >= ranking.centroid_dist(rank - 1));
        }
        // The remaining bound is non-decreasing as chunks are consumed.
        for processed in 1..=ranking.len() {
            assert!(ranking.remaining_bound(processed) >= ranking.remaining_bound(processed - 1));
        }
        assert_eq!(ranking.remaining_bound(ranking.len()), f32::INFINITY);
        let order = ranking.order();
        assert_eq!(order[0], ranking.chunk_at(0));
    }

    #[test]
    fn step_yields_one_event_per_chunk_then_none() {
        let set = lumpy_set(200);
        let store = build_store("steps", &set, 25);
        let model = DiskModel::ata_2005();
        let q = set.vector_owned(11);
        let params = SearchParams::exact(5);
        let mut session = SearchSession::with_source(
            &store,
            &model,
            &q,
            &params,
            Arc::new(FileSource::new(&store)),
        );
        let n = store.n_chunks();
        for i in 0..n {
            let event = session.step().expect("step").expect("event").clone();
            assert_eq!(event.rank, i);
            assert_eq!(session.chunks_read(), i + 1);
        }
        assert!(session.step().expect("step").is_none());
        assert!(session.is_exhausted());
        let result = session.into_result();
        assert_eq!(result.log.events.len(), n);
        assert!(result.log.completed, "full scan is completion");
    }

    #[test]
    fn session_survives_reading_past_its_stop_rule() {
        let set = lumpy_set(400);
        let store = build_store("past", &set, 25);
        let model = DiskModel::ata_2005();
        let q = set.vector_owned(3);
        let params = SearchParams {
            k: 5,
            stop: StopRule::Chunks(2),
            prefetch_depth: 2,
            log_snapshots: true,
        };
        let mut session = SearchSession::open(&store, &model, &q, &params);
        session.run_to_stop().expect("run");
        assert_eq!(session.chunks_read(), 2);
        let at_stop = session.result_for_rule(StopRule::Chunks(2));
        assert_eq!(at_stop.log.chunks_read, 2);
        // Keep stepping past the satisfied rule: the snapshot taken above
        // must be unaffected, and the session keeps producing events.
        session.step().expect("step").expect("event");
        assert_eq!(session.chunks_read(), 3);
        assert_eq!(at_stop.log.chunks_read, 2);
    }

    #[test]
    fn rank_into_reuses_buffers_and_matches_fresh_rank() {
        let set = lumpy_set(300);
        let store = build_store("rankinto", &set, 30);
        let model = DiskModel::ata_2005();
        let mut scratch = ChunkRanking::default();
        for qpos in [0usize, 57, 123, 299] {
            let q = set.vector_owned(qpos);
            scratch.rank_into(&store, &model, &q);
            let fresh = ChunkRanking::rank(&store, &model, &q);
            assert_eq!(scratch.len(), fresh.len());
            assert_eq!(scratch.order(), fresh.order());
            assert_eq!(
                scratch.index_read_time().as_secs().to_bits(),
                fresh.index_read_time().as_secs().to_bits()
            );
            for rank in 0..fresh.len() {
                assert_eq!(
                    scratch.centroid_dist(rank).to_bits(),
                    fresh.centroid_dist(rank).to_bits()
                );
            }
            for processed in 0..=fresh.len() {
                assert_eq!(
                    scratch.remaining_bound(processed).to_bits(),
                    fresh.remaining_bound(processed).to_bits()
                );
            }
        }
    }

    #[test]
    fn fed_session_is_bit_identical_to_pulling_session() {
        let set = lumpy_set(400);
        let store = build_store("fed", &set, 25);
        let model = DiskModel::ata_2005();
        let q = set.vector_owned(42);
        let params = SearchParams::exact(8);

        let mut pulling = SearchSession::with_source(
            &store,
            &model,
            &q,
            &params,
            Arc::new(FileSource::new(&store)),
        );
        pulling.run_to_stop().expect("run");
        let want = pulling.into_result();

        // Drive a detached twin by hand: fetch whatever it asks for.
        let mut fed = SearchSession::detached(&store, &model, &q, &params);
        let mut reader = store.reader().expect("reader");
        while !fed.stop_satisfied() {
            let Some(id) = fed.next_wanted() else { break };
            let mut payload = eff2_storage::chunkfile::ChunkPayload::default();
            let bytes_read = reader.read_chunk(id, &mut payload).expect("read");
            let chunk = SourcedChunk {
                id,
                payload: Arc::new(payload),
                bytes_read,
            };
            fed.step_with(&chunk).expect("step_with").expect("event");
        }
        let got = fed.into_result();

        assert_eq!(got.neighbors.len(), want.neighbors.len());
        for (g, w) in got.neighbors.iter().zip(want.neighbors.iter()) {
            assert_eq!(g.id, w.id);
            assert_eq!(g.dist.to_bits(), w.dist.to_bits());
        }
        assert_eq!(got.log.chunks_read, want.log.chunks_read);
        assert_eq!(got.log.bytes_read, want.log.bytes_read);
        assert_eq!(got.log.completed, want.log.completed);
        assert_eq!(
            got.log.total_virtual.as_secs().to_bits(),
            want.log.total_virtual.as_secs().to_bits()
        );
        for (g, w) in got.log.events.iter().zip(want.log.events.iter()) {
            assert_eq!(g.chunk_id, w.chunk_id);
            assert_eq!(
                g.completed_at.as_secs().to_bits(),
                w.completed_at.as_secs().to_bits()
            );
            assert_eq!(g.kth_dist.to_bits(), w.kth_dist.to_bits());
        }
    }

    #[test]
    fn step_with_rejects_the_wrong_chunk() {
        let set = lumpy_set(200);
        let store = build_store("wrongchunk", &set, 20);
        let model = DiskModel::ata_2005();
        let q = set.vector_owned(7);
        let mut session = SearchSession::detached(&store, &model, &q, &SearchParams::exact(5));
        let wanted = session.next_wanted().expect("wants a chunk");
        let wrong = (wanted + 1) % store.n_chunks();
        let mut reader = store.reader().expect("reader");
        let mut payload = eff2_storage::chunkfile::ChunkPayload::default();
        let bytes_read = reader.read_chunk(wrong, &mut payload).expect("read");
        let chunk = SourcedChunk {
            id: wrong,
            payload: Arc::new(payload),
            bytes_read,
        };
        assert!(
            session.step_with(&chunk).is_err(),
            "wrong chunk must be refused"
        );
        assert_eq!(session.chunks_read(), 0, "a refused feed changes nothing");
        assert_eq!(session.next_wanted(), Some(wanted));
    }

    #[test]
    fn detached_session_refuses_to_pull() {
        let set = lumpy_set(100);
        let store = build_store("detached", &set, 20);
        let model = DiskModel::ata_2005();
        let mut session =
            SearchSession::detached(&store, &model, &Vector::ZERO, &SearchParams::exact(3));
        assert!(session.step().is_err(), "no source to pull from");
    }

    /// Delivers through an inner source but replaces the listed chunk ids
    /// with a permanent [`Error::ChunkLost`], consuming their position —
    /// the shape eff2-chaos's retry layer produces.
    ///
    /// [`Error::ChunkLost`]: eff2_storage::Error::ChunkLost
    struct LosingSource {
        inner: Arc<dyn ChunkSource>,
        lost: Vec<usize>,
        spent: VirtualDuration,
    }

    struct LosingStream {
        inner: Box<dyn ChunkStream>,
        lost: Vec<usize>,
        spent: VirtualDuration,
    }

    impl ChunkSource for LosingSource {
        fn open_stream(&self, order: Vec<usize>) -> Result<Box<dyn ChunkStream>> {
            Ok(Box::new(LosingStream {
                inner: self.inner.open_stream(order)?,
                lost: self.lost.clone(),
                spent: self.spent,
            }))
        }
    }

    impl ChunkStream for LosingStream {
        fn next_chunk(&mut self) -> Option<Result<SourcedChunk>> {
            match self.inner.next_chunk()? {
                Ok(chunk) if self.lost.contains(&chunk.id) => {
                    Some(Err(eff2_storage::Error::ChunkLost {
                        chunk: chunk.id,
                        attempts: 3,
                        spent: self.spent,
                    }))
                }
                item => Some(item),
            }
        }
    }

    #[test]
    fn default_policy_aborts_on_a_lost_chunk() {
        let set = lumpy_set(200);
        let store = build_store("abort", &set, 20);
        let model = DiskModel::ata_2005();
        let q = Vector::splat(40.0);
        let ranking = ChunkRanking::rank(&store, &model, &q);
        let source = Arc::new(LosingSource {
            inner: Arc::new(FileSource::new(&store)),
            lost: vec![ranking.chunk_at(0)],
            spent: VirtualDuration::ZERO,
        });
        let mut session =
            SearchSession::with_source(&store, &model, &q, &SearchParams::exact(5), source);
        assert_eq!(session.skip_policy(), SkipPolicy::Abort);
        assert!(matches!(
            session.step(),
            Err(eff2_storage::Error::ChunkLost { .. })
        ));
    }

    #[test]
    fn skip_policy_completes_with_an_exact_degradation_report() {
        let set = lumpy_set(300);
        let store = build_store("skip", &set, 20);
        let model = DiskModel::ata_2005();
        let q = Vector::splat(40.0);
        let ranking = ChunkRanking::rank(&store, &model, &q);
        // Lose the first two ranked chunks: they are consumed before any
        // completion proof can fire, whatever the data looks like.
        let lost = vec![ranking.chunk_at(0), ranking.chunk_at(1)];
        let source = Arc::new(LosingSource {
            inner: Arc::new(FileSource::new(&store)),
            lost: lost.clone(),
            spent: VirtualDuration::from_ms(15.0),
        });
        let params = SearchParams {
            k: 5,
            stop: StopRule::ToCompletion,
            prefetch_depth: 1,
            log_snapshots: false,
        };
        let mut session = SearchSession::with_source(&store, &model, &q, &params, source);
        session.set_skip_policy(SkipPolicy::SkipUnavailable);
        session
            .run_to_stop()
            .expect("degraded search must not error");
        let result = session.into_result();
        let d = &result.log.degradation;
        assert_eq!(d.chunks_lost, 2);
        assert_eq!(d.lost_chunks, lost);
        let want_lost: u64 = lost
            .iter()
            .map(|&c| u64::from(store.metas()[c].count))
            .sum();
        assert_eq!(d.descriptors_lost, want_lost);
        assert_eq!(
            result.log.fidelity(),
            crate::search::ResultFidelity::Degraded
        );
        // Scanned + lost covers the consumed prefix of the ranked order.
        assert!(result.log.chunks_read + d.chunks_lost <= store.n_chunks());
        // No lost chunk appears among the scanned events.
        for e in &result.log.events {
            assert!(!lost.contains(&e.chunk_id));
        }
    }

    #[test]
    fn lost_chunks_consume_the_chunks_stop_budget() {
        let set = lumpy_set(300);
        let store = build_store("skipbudget", &set, 20);
        let model = DiskModel::ata_2005();
        let q = Vector::splat(40.0);
        let ranking = ChunkRanking::rank(&store, &model, &q);
        let lost = vec![ranking.chunk_at(0), ranking.chunk_at(2)];
        let source = Arc::new(LosingSource {
            inner: Arc::new(FileSource::new(&store)),
            lost: lost.clone(),
            spent: VirtualDuration::ZERO,
        });
        let params = SearchParams {
            k: 5,
            stop: StopRule::Chunks(4),
            prefetch_depth: 1,
            log_snapshots: false,
        };
        let mut session = SearchSession::with_source(&store, &model, &q, &params, source);
        session.set_skip_policy(SkipPolicy::SkipUnavailable);
        session.run_to_stop().expect("run");
        let result = session.into_result();
        // Budget of 4 ranked chunks: 2 lost + 2 scanned, honestly.
        assert_eq!(result.log.degradation.chunks_lost, 2);
        assert_eq!(result.log.chunks_read, 2);
        assert!(!result.log.completed);
    }

    #[test]
    fn skip_charge_advances_the_virtual_clock() {
        let set = lumpy_set(200);
        let store = build_store("skipcharge", &set, 20);
        let model = DiskModel::ata_2005();
        let q = Vector::splat(40.0);
        let ranking = ChunkRanking::rank(&store, &model, &q);
        let lost = vec![ranking.chunk_at(0)];
        let params = SearchParams {
            k: 5,
            stop: StopRule::Chunks(3),
            prefetch_depth: 1,
            log_snapshots: false,
        };
        let run = |spent: VirtualDuration| {
            let source = Arc::new(LosingSource {
                inner: Arc::new(FileSource::new(&store)),
                lost: lost.clone(),
                spent,
            });
            let mut session = SearchSession::with_source(&store, &model, &q, &params, source);
            session.set_skip_policy(SkipPolicy::SkipUnavailable);
            session.run_to_stop().expect("run");
            session.into_result().log.total_virtual
        };
        let free = run(VirtualDuration::ZERO);
        let charged = run(VirtualDuration::from_ms(25.0));
        assert!(
            charged.as_secs() >= free.as_secs() + 0.024,
            "retry time must be charged to the modelled clock ({free} vs {charged})"
        );
    }

    #[test]
    fn missing_chunk_file_errors_cleanly_at_first_step() {
        let set = lumpy_set(120);
        let store = build_store("missing", &set, 20);
        let model = DiskModel::ata_2005();
        let q = Vector::ZERO;
        let params = SearchParams::exact(4);
        let mut session = SearchSession::open(&store, &model, &q, &params);
        std::fs::remove_file(store.chunk_path()).expect("delete chunk file");
        let got = session.step();
        assert!(got.is_err(), "deleted file must surface as Err, not panic");
    }
}
