//! Sequential-scan baselines.
//!
//! The paper measures precision by first running "a sequential scan of the
//! collection" and storing the identifiers of the true nearest neighbours
//! (§5.4). [`scan_knn`] is that ground-truth scan over an in-memory
//! collection; [`scan_store_knn`] streams an on-disk chunk store end to end
//! (the curse-of-dimensionality fallback every index degrades to).

use crate::neighbors::{Neighbor, NeighborSet};
use eff2_descriptor::{scan_block_into, DescriptorSet, Vector};
use eff2_storage::{ChunkStore, Result};

/// Exact k-nearest neighbours of `query` by scanning `set` with the
/// fused block kernel.
pub fn scan_knn(set: &DescriptorSet, query: &Vector, k: usize) -> Vec<Neighbor> {
    let mut best = NeighborSet::new(k);
    scan_block_into(query.as_array(), set.packed(), set.raw_ids(), &mut best);
    best.sorted()
}

/// Exact k-nearest neighbours of `query` by streaming every chunk of
/// `store` in file order.
pub fn scan_store_knn(store: &ChunkStore, query: &Vector, k: usize) -> Result<Vec<Neighbor>> {
    let mut best = NeighborSet::new(k);
    let mut reader = store.reader()?;
    let mut payload = eff2_storage::ChunkData::default();
    for id in 0..store.n_chunks() {
        reader.read_chunk(id, &mut payload)?;
        scan_block_into(query.as_array(), &payload.packed, &payload.ids, &mut best);
    }
    Ok(best.sorted())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunkers::{ChunkFormer, SrTreeChunker};
    use eff2_descriptor::Descriptor;

    fn set_of(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| {
                let mut v = Vector::splat((i % 7) as f32);
                v[2] += i as f32 * 0.01;
                Descriptor::new(i as u32 + 100, v)
            })
            .collect()
    }

    #[test]
    fn scan_finds_self_first() {
        let set = set_of(50);
        let q = set.vector_owned(13);
        let nn = scan_knn(&set, &q, 3);
        assert_eq!(nn[0].id, set.id(13).0);
        assert_eq!(nn[0].dist, 0.0);
    }

    #[test]
    fn scan_orders_by_distance() {
        let set = set_of(100);
        let nn = scan_knn(&set, &Vector::splat(3.0), 10);
        assert!(nn.windows(2).all(|w| w[0].dist <= w[1].dist));
        assert_eq!(nn.len(), 10);
    }

    #[test]
    fn scan_k_exceeds_n() {
        let set = set_of(5);
        let nn = scan_knn(&set, &Vector::ZERO, 50);
        assert_eq!(nn.len(), 5);
    }

    #[test]
    fn scan_empty_set() {
        let set = DescriptorSet::new();
        assert!(scan_knn(&set, &Vector::ZERO, 5).is_empty());
    }

    #[test]
    fn store_scan_matches_memory_scan() {
        let set = set_of(200);
        let formation = SrTreeChunker { leaf_size: 32 }.form(&set);
        let dir = std::env::temp_dir().join("eff2_scan_store");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let store = eff2_storage::ChunkStore::create(&dir, "scan", &set, &formation.chunks, 512)
            .expect("create");
        let q = Vector::splat(2.5);
        let want = scan_knn(&set, &q, 7);
        let got = scan_store_knn(&store, &q, 7).expect("scan");
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.id, w.id);
            assert!((g.dist - w.dist).abs() < 1e-5);
        }
    }
}
