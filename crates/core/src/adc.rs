//! One-shot drivers for quantized (asymmetric-distance) and two-level
//! ranked search.
//!
//! [`crate::search::search`] scans raw `f32` records under a flat chunk
//! ranking. This module provides the compressed/coarse variants the
//! quality-vs-time study sweeps:
//!
//! * [`search_two_level`] — exact `f32` scan, but the ranking is
//!   two-level ([`ChunkRanking::rank_two_level`]): coarse cells first,
//!   chunks expanded wave by wave. Under the to-completion rule the
//!   answer is provably identical to the flat search — only the
//!   centroid-evaluation count changes;
//! * [`search_quantized`] / [`search_quantized_with`] — scan the v3
//!   store's compact code region with the ADC kernels, retain
//!   `rerank_mult · k` candidates, then re-score them against the raw
//!   records (the **exact rerank tail**) so the returned top-`k` carries
//!   exact distances. Modelled bytes shrink by roughly the codec's
//!   compression ratio; quality is recovered by deepening the rerank
//!   pool.

use crate::coarse::CoarseQuantizer;
use crate::search::{SearchParams, SearchResult};
use crate::session::{ChunkRanking, SearchSession};
use eff2_descriptor::Vector;
use eff2_storage::diskmodel::DiskModel;
use eff2_storage::source::PrefetchSource;
use eff2_storage::{ChunkStore, Result};
use std::sync::Arc;

/// Executes one query with a **two-level** chunk ranking: rank `coarse`'s
/// cells, expand only the cells the scan actually reaches. Exact-scan
/// twin of [`crate::search::search`]; under `StopRule::ToCompletion` the
/// neighbour ids (and distances, bit for bit) match the flat search,
/// while `log.centroid_evals` records how many centroid distances the
/// ranking really spent.
pub fn search_two_level(
    store: &ChunkStore,
    model: &DiskModel,
    query: &Vector,
    params: &SearchParams,
    coarse: &CoarseQuantizer,
) -> Result<SearchResult> {
    let ranking = ChunkRanking::rank_two_level(store, model, query, coarse);
    let source = Arc::new(PrefetchSource::new(store, params.prefetch_depth));
    let mut session = SearchSession::from_ranking(ranking, model, query, params, source);
    session.run_to_stop()?;
    Ok(session.into_result())
}

/// Executes one query over a quantized (v3) store with a flat ranking:
/// ADC scan of the code region, then the exact rerank tail. See
/// [`search_quantized_with`] for the two-level form.
pub fn search_quantized(
    store: &ChunkStore,
    model: &DiskModel,
    query: &Vector,
    params: &SearchParams,
    rerank_mult: usize,
) -> Result<SearchResult> {
    search_quantized_with(store, model, query, params, rerank_mult, None)
}

/// [`search_quantized`] with an optional coarse quantizer: when `coarse`
/// is `Some`, chunk ranking is two-level as well, stacking both
/// reductions — fewer centroid evaluations *and* fewer bytes per chunk.
///
/// `rerank_mult` is the rerank depth `R`: the ADC scan retains the best
/// `R · k` candidates, and the tail re-scores exactly those against the
/// raw records. `R = 1` reranks only the ADC top-`k`; larger `R` recovers
/// precision monotonically (the candidate pools are nested in `R`).
pub fn search_quantized_with(
    store: &ChunkStore,
    model: &DiskModel,
    query: &Vector,
    params: &SearchParams,
    rerank_mult: usize,
    coarse: Option<&CoarseQuantizer>,
) -> Result<SearchResult> {
    let mut session =
        SearchSession::open_quantized(store, model, query, params, rerank_mult, coarse)?;
    session.run_to_stop()?;
    session.rerank_tail()?;
    Ok(session.into_result())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunkers::{ChunkFormer, SrTreeChunker};
    use crate::search::{search, StopRule};
    use eff2_descriptor::quant::{Codec, PqCodec, Sq8Codec};
    use eff2_descriptor::{Descriptor, DescriptorSet};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eff2_adc_{tag}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn lumpy_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| {
                let blob = (i % 5) as f32 * 20.0;
                let mut v = Vector::splat(blob);
                v[0] += ((i * 31) % 23) as f32 * 0.3;
                v[3] -= ((i * 17) % 19) as f32 * 0.2;
                v[7] += ((i * 13) % 11) as f32 * 0.15;
                Descriptor::new(i as u32, v)
            })
            .collect()
    }

    fn build_raw(tag: &str, set: &DescriptorSet, leaf: usize) -> ChunkStore {
        let formation = SrTreeChunker { leaf_size: leaf }.form(set);
        ChunkStore::create(&tmp_dir(tag), "ix", set, &formation.chunks, 512).expect("create")
    }

    fn build_quant(tag: &str, set: &DescriptorSet, leaf: usize, codec: &Codec) -> ChunkStore {
        let formation = SrTreeChunker { leaf_size: leaf }.form(set);
        ChunkStore::create_quantized(&tmp_dir(tag), "ix", set, &formation.chunks, 512, codec)
            .expect("create quantized")
    }

    #[test]
    fn two_level_to_completion_matches_flat_bitwise() {
        let set = lumpy_set(800);
        let store = build_raw("twolevel", &set, 25);
        let coarse = CoarseQuantizer::for_store(&store);
        let model = DiskModel::ata_2005();
        for qpos in [0usize, 113, 404, 777] {
            let q = set.vector_owned(qpos);
            let flat = search(&store, &model, &q, &SearchParams::exact(10)).expect("flat");
            let two = search_two_level(&store, &model, &q, &SearchParams::exact(10), &coarse)
                .expect("two-level");
            assert!(flat.log.completed && two.log.completed);
            assert_eq!(flat.neighbors.len(), two.neighbors.len());
            for (f, t) in flat.neighbors.iter().zip(two.neighbors.iter()) {
                assert_eq!(f.id, t.id, "neighbor ids must be unchanged at q{qpos}");
                assert_eq!(f.dist.to_bits(), t.dist.to_bits());
            }
        }
    }

    #[test]
    fn two_level_spends_fewer_centroid_evals_when_it_stops_early() {
        let set = lumpy_set(1_200);
        let store = build_raw("evals", &set, 20);
        let coarse = CoarseQuantizer::for_store(&store);
        let model = DiskModel::ata_2005();
        // A dataset point inside a tight blob completes after few chunks,
        // so only a few cells expand.
        let q = set.vector_owned(7);
        let flat = search(&store, &model, &q, &SearchParams::exact(5)).expect("flat");
        let two = search_two_level(&store, &model, &q, &SearchParams::exact(5), &coarse)
            .expect("two-level");
        assert_eq!(flat.log.centroid_evals, store.n_chunks() as u64);
        assert!(
            two.log.centroid_evals < flat.log.centroid_evals,
            "two-level must rank fewer centroids ({} vs {})",
            two.log.centroid_evals,
            flat.log.centroid_evals
        );
    }

    #[test]
    fn two_level_full_exhaustion_sees_every_chunk_once() {
        let set = lumpy_set(600);
        let store = build_raw("exhaust", &set, 30);
        let coarse = CoarseQuantizer::for_store(&store);
        let model = DiskModel::ata_2005();
        // An off-dataset query with a huge k forces full exhaustion.
        let q = Vector::splat(500.0);
        let two = search_two_level(&store, &model, &q, &SearchParams::exact(600), &coarse)
            .expect("two-level");
        assert_eq!(two.log.chunks_read, store.n_chunks());
        let mut seen = vec![false; store.n_chunks()];
        for e in &two.log.events {
            assert!(!seen[e.chunk_id], "chunk {} scanned twice", e.chunk_id);
            seen[e.chunk_id] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(
            two.log.centroid_evals,
            (coarse.n_cells() + store.n_chunks()) as u64
        );
    }

    #[test]
    fn full_budget_rerank_matches_uncompressed_ids_bitwise() {
        let set = lumpy_set(500);
        let raw = build_raw("fullbudget_raw", &set, 25);
        for (tag, codec) in [
            ("sq8", Codec::Sq8(Sq8Codec::from_set(&set))),
            ("pq", Codec::Pq(PqCodec::from_set(&set))),
        ] {
            let quant = build_quant(&format!("fullbudget_{tag}"), &set, 25, &codec);
            let model = DiskModel::ata_2005();
            let params = SearchParams {
                k: 5,
                stop: StopRule::Chunks(usize::MAX),
                prefetch_depth: 2,
                log_snapshots: false,
            };
            for qpos in [3usize, 250, 499] {
                let q = set.vector_owned(qpos);
                let exact = search(&raw, &model, &q, &params).expect("exact");
                // Rerank pool of R·k >= n guarantees the candidate pool is
                // a superset of the true top-k.
                let reranked =
                    search_quantized(&quant, &model, &q, &params, set.len()).expect("quantized");
                assert_eq!(
                    exact.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
                    reranked.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
                    "{tag}: q{qpos} ids must match the uncompressed search"
                );
                for (e, r) in exact.neighbors.iter().zip(reranked.neighbors.iter()) {
                    assert_eq!(
                        e.dist.to_bits(),
                        r.dist.to_bits(),
                        "{tag}: reranked distances must be exact"
                    );
                }
            }
        }
    }

    #[test]
    fn precision_is_monotone_in_rerank_depth() {
        let set = lumpy_set(900);
        let raw = build_raw("monodepth_raw", &set, 25);
        let codec = Codec::Sq8(Sq8Codec::from_set(&set));
        let quant = build_quant("monodepth", &set, 25, &codec);
        let model = DiskModel::ata_2005();
        let budget = (raw.n_chunks() * 3 / 5).max(1);
        let params = SearchParams {
            k: 10,
            stop: StopRule::Chunks(budget),
            prefetch_depth: 2,
            log_snapshots: false,
        };
        for qpos in [11usize, 222, 555, 888] {
            let q = set.vector_owned(qpos);
            let truth: Vec<u32> = search(&raw, &model, &q, &params)
                .expect("truth")
                .neighbors
                .iter()
                .map(|n| n.id)
                .collect();
            let mut last = -1i64;
            for r in [1usize, 2, 4, 8] {
                let got = search_quantized(&quant, &model, &q, &params, r).expect("quantized");
                let hits = got
                    .neighbors
                    .iter()
                    .filter(|n| truth.contains(&n.id))
                    .count() as i64;
                assert!(
                    hits >= last,
                    "q{qpos}: precision dropped from {last} to {hits} at R={r}"
                );
                last = hits;
            }
        }
    }

    #[test]
    fn quantized_scan_reads_fewer_bytes() {
        let set = lumpy_set(600);
        let raw = build_raw("bytes_raw", &set, 25);
        let codec = Codec::Sq8(Sq8Codec::from_set(&set));
        let quant = build_quant("bytes", &set, 25, &codec);
        let model = DiskModel::ata_2005();
        let budget = raw.n_chunks();
        let params = SearchParams {
            k: 5,
            stop: StopRule::Chunks(budget),
            prefetch_depth: 2,
            log_snapshots: false,
        };
        let q = set.vector_owned(42);
        let exact = search(&raw, &model, &q, &params).expect("exact");
        let quantized = search_quantized(&quant, &model, &q, &params, 4).expect("quantized");
        let scan_bytes = quantized.log.bytes_read - quantized.log.rerank_bytes;
        assert!(
            scan_bytes < exact.log.bytes_read,
            "quantized scan must read fewer bytes ({scan_bytes} vs {})",
            exact.log.bytes_read
        );
        assert!(quantized.log.rerank_chunks > 0, "tail must have reranked");
    }

    #[test]
    fn quantized_two_level_stacks_both_reductions() {
        let set = lumpy_set(800);
        let raw = build_raw("stack_raw", &set, 20);
        let codec = Codec::Sq8(Sq8Codec::from_set(&set));
        let quant = build_quant("stack", &set, 20, &codec);
        let coarse = CoarseQuantizer::for_store(&quant);
        let model = DiskModel::ata_2005();
        let params = SearchParams::exact(5);
        let q = set.vector_owned(13);
        let flat_exact = search(&raw, &model, &q, &params).expect("flat exact");
        let got = search_quantized_with(&quant, &model, &q, &params, 8, Some(&coarse))
            .expect("quantized two-level");
        assert!(got.log.centroid_evals <= flat_exact.log.centroid_evals);
        assert!(got.neighbors.len() == params.k.min(set.len()));
    }

    #[test]
    fn quantized_search_rejects_a_raw_store() {
        let set = lumpy_set(200);
        let raw = build_raw("rejectraw", &set, 25);
        let model = DiskModel::ata_2005();
        let q = Vector::ZERO;
        assert!(
            search_quantized(&raw, &model, &q, &SearchParams::exact(5), 2).is_err(),
            "a v2 store has no quantized payloads to scan"
        );
    }

    #[test]
    fn k_zero_quantized_search_is_empty_and_reads_nothing() {
        let set = lumpy_set(200);
        let codec = Codec::Sq8(Sq8Codec::from_set(&set));
        let quant = build_quant("kzero", &set, 25, &codec);
        let model = DiskModel::ata_2005();
        let params = SearchParams {
            k: 0,
            stop: StopRule::ToCompletion,
            prefetch_depth: 1,
            log_snapshots: false,
        };
        let got = search_quantized(&quant, &model, &Vector::ZERO, &params, 4).expect("search");
        assert!(got.neighbors.is_empty());
        assert_eq!(got.log.chunks_read, 0);
        assert_eq!(got.log.rerank_chunks, 0);
    }
}
