//! Building and opening chunk indexes — the top-level user API.

use crate::chunkers::{ChunkFormation, ChunkFormer};
use crate::search::{search, search_with_source, SearchParams, SearchResult, StopRule};
use crate::session::SearchSession;
use eff2_descriptor::{DescriptorSet, Vector};
use eff2_storage::diskmodel::DiskModel;
use eff2_storage::source::{ChunkSource, ResidentSource};
use eff2_storage::{ChunkStore, Result};
use std::path::Path;
use std::sync::Arc;

/// An openable, searchable chunk index: a [`ChunkStore`] paired with the
/// cost model its timings are reported under.
#[derive(Debug)]
pub struct ChunkIndex {
    store: ChunkStore,
    model: DiskModel,
}

/// A freshly built index together with how its chunks were formed.
#[derive(Debug)]
pub struct BuiltIndex {
    /// The searchable index.
    pub index: ChunkIndex,
    /// Formation output (chunks summary, outliers, cost) — Table 1's raw
    /// material.
    pub formation: ChunkFormation,
}

impl ChunkIndex {
    /// Forms chunks over `set` with `former` and writes the chunk + index
    /// files under `dir/name.{chunks,index}`.
    ///
    /// Outliers identified by the former are excluded from the files, as in
    /// the paper ("outliers were then removed").
    pub fn build(
        dir: &Path,
        name: &str,
        set: &DescriptorSet,
        former: &dyn ChunkFormer,
        page_size: u32,
        model: DiskModel,
    ) -> Result<BuiltIndex> {
        let formation = former.form(set);
        let store = ChunkStore::create(dir, name, set, &formation.chunks, page_size)?;
        Ok(BuiltIndex {
            index: ChunkIndex { store, model },
            formation,
        })
    }

    /// Opens an existing index.
    pub fn open(chunk_path: &Path, index_path: &Path, model: DiskModel) -> Result<ChunkIndex> {
        Ok(ChunkIndex {
            store: ChunkStore::open(chunk_path, index_path)?,
            model,
        })
    }

    /// Wraps an already-open store.
    pub fn from_store(store: ChunkStore, model: DiskModel) -> ChunkIndex {
        ChunkIndex { store, model }
    }

    /// The underlying store.
    pub fn store(&self) -> &ChunkStore {
        &self.store
    }

    /// The cost model.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Executes one query.
    pub fn search(&self, query: &Vector, params: &SearchParams) -> Result<SearchResult> {
        search(&self.store, &self.model, query, params)
    }

    /// Executes one query drawing chunks from an explicit source (e.g. a
    /// shared [`ResidentSource`] from [`resident_source`](Self::resident_source)).
    pub fn search_with_source(
        &self,
        query: &Vector,
        params: &SearchParams,
        source: Arc<dyn ChunkSource>,
    ) -> Result<SearchResult> {
        search_with_source(&self.store, &self.model, query, params, source)
    }

    /// Opens a resumable [`SearchSession`] for one query: step it chunk by
    /// chunk, inspect intermediate quality, stop when satisfied.
    pub fn session(&self, query: &Vector, params: &SearchParams) -> SearchSession {
        SearchSession::open(&self.store, &self.model, query, params)
    }

    /// [`session`](Self::session) over an explicit chunk source.
    pub fn session_with_source(
        &self,
        query: &Vector,
        params: &SearchParams,
        source: Arc<dyn ChunkSource>,
    ) -> SearchSession {
        SearchSession::with_source(&self.store, &self.model, query, params, source)
    }

    /// Answers every stop rule in `rules` for one query from a single scan
    /// of the collection — each entry identical to an individual
    /// [`search`](Self::search) with that rule.
    pub fn evaluate_stop_rules(
        &self,
        query: &Vector,
        params: &SearchParams,
        rules: &[StopRule],
    ) -> Result<Vec<SearchResult>> {
        self.session(query, params).evaluate_rules(rules)
    }

    /// A [`ResidentSource`] over this index's store pinning at most
    /// `budget_bytes` of decoded chunks — share it (it clones cheaply)
    /// across queries for hot serving. Figures are unchanged: cache hits
    /// still charge the modelled I/O.
    pub fn resident_source(&self, budget_bytes: u64) -> ResidentSource {
        ResidentSource::new(&self.store, budget_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunkers::SrTreeChunker;
    use crate::scan::scan_knn;
    use eff2_descriptor::Descriptor;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eff2_index_{tag}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn sample_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| {
                let mut v = Vector::splat((i % 9) as f32 * 3.0);
                v[5] += i as f32 * 0.02;
                Descriptor::new(i as u32, v)
            })
            .collect()
    }

    #[test]
    fn build_search_open_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let set = sample_set(300);
        let built = ChunkIndex::build(
            &dir,
            "t",
            &set,
            &SrTreeChunker { leaf_size: 32 },
            512,
            DiskModel::ata_2005(),
        )
        .expect("build");
        assert_eq!(built.formation.retained(), 300);
        assert_eq!(
            built.index.store().total_descriptors(),
            300,
            "no outliers for SR-tree"
        );

        let q = set.vector_owned(42);
        let got = built
            .index
            .search(&q, &SearchParams::exact(5))
            .expect("search");
        let want = scan_knn(&set, &q, 5);
        for (g, w) in got.neighbors.iter().zip(want.iter()) {
            assert_eq!(g.id, w.id);
        }

        // Reopen from disk and search again.
        let reopened = ChunkIndex::open(
            built.index.store().chunk_path(),
            built.index.store().index_path(),
            DiskModel::ata_2005(),
        )
        .expect("open");
        let again = reopened
            .search(&q, &SearchParams::exact(5))
            .expect("search");
        assert_eq!(
            again.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
            got.neighbors.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn outliers_are_excluded_from_files() {
        // A former with a synthetic outlier: wrap SR-tree but drop the
        // first position.
        struct DropFirst;
        impl ChunkFormer for DropFirst {
            fn name(&self) -> String {
                "drop-first".into()
            }
            fn form(&self, set: &DescriptorSet) -> ChunkFormation {
                let mut f = SrTreeChunker { leaf_size: 10 }.form(set);
                for c in &mut f.chunks {
                    c.positions.retain(|&p| p != 0);
                }
                f.outliers.push(0);
                f
            }
        }
        let dir = tmp_dir("outliers");
        let set = sample_set(50);
        let built = ChunkIndex::build(&dir, "o", &set, &DropFirst, 256, DiskModel::instant())
            .expect("build");
        assert_eq!(built.index.store().total_descriptors(), 49);
        assert_eq!(built.formation.outliers, vec![0]);
    }
}
