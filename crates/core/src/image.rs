//! Image-level queries: multi-descriptor vote aggregation.
//!
//! The paper searches one descriptor at a time, but a real image query is
//! a *set* of local descriptors, each voting for the images its nearest
//! neighbours came from. This module is the aggregation layer on top of
//! the per-descriptor machinery:
//!
//! * [`ImageVoteAccumulator`] folds per-descriptor neighbour lists into a
//!   deterministic image ranking — one vote per retained neighbour,
//!   ranked by `(votes desc, best distance asc, image id asc)`. The fold
//!   is commutative (votes sum, distances take a running minimum), so the
//!   ranking is independent of the order descriptor results arrive in —
//!   which is what makes interleaved serving bit-identical to solo runs.
//! * [`ImageStopRule`] / [`ImageStopTracker`] are the cross-descriptor
//!   early-termination rules: stop absorbing descriptor results once the
//!   top-`m` image ranking has been stable for `S` consecutive
//!   completions (the heuristic from *Minimizing the Number of Matching
//!   Queries for Object Retrieval*), or once the vote margins *prove*
//!   the prefix can no longer change ([`certified`]).
//! * [`ImageAggregator`] packages accumulator + tracker + the
//!   spent/abandoned accounting and fidelity fold every driver needs, so
//!   the serving scheduler and the solo reference cannot drift.
//! * [`solo_image_search`] is the serial reference: every descriptor
//!   searched alone through [`Snapshot::search`], results absorbed in
//!   descriptor order — the baseline the equivalence proptests compare
//!   the interleaved scheduler against.
//!
//! ## The stability certificate
//!
//! With `R` descriptor searches still outstanding and at most `k`
//! neighbours retained per search, any single image can gain at most
//! `R·k` further votes. If at every prefix boundary `i ∈ 1..=m` the
//! currently ranked images satisfy `votes[i-1] > votes[i] + R·k` (with
//! `votes[i] = 0` past the end of the ranking, standing in for any image
//! not seen yet), then no image at or beyond position `i` — nor any
//! unseen image — can catch the image at position `i-1`. By induction the
//! ordered top-`m` prefix of the final, run-to-completion ranking equals
//! the current one. That is the certificate the headline proptest keys
//! on: whenever an early-terminated run reports `certificate = true`, its
//! top-`m` prefix must agree with the completed run's, bit for bit.
//!
//! [`certified`]: ImageStopRule::CertifiedTop

use crate::search::{ResultFidelity, SearchParams, SearchResult};
use crate::snapshot::Snapshot;
use eff2_descriptor::{Neighbor, Vector};
use eff2_storage::Result;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One image's standing in the vote tally.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ImageVote {
    /// The image id (the bucket descriptor ids map to).
    pub image: u32,
    /// Retained neighbours that belong to this image, across every
    /// absorbed descriptor result.
    pub votes: u32,
    /// Smallest squared distance any of those neighbours achieved — the
    /// first tie-break of the ranking.
    pub best_dist: f32,
}

/// Folds per-descriptor neighbour lists into a deterministic image
/// ranking. See the [module docs](self) for the vote semantics and why
/// the fold is order-independent.
#[derive(Clone, Debug)]
pub struct ImageVoteAccumulator {
    /// Descriptor id → owning image id (collection-sized, shared across
    /// queries).
    image_of: Arc<Vec<u32>>,
    /// Per-descriptor neighbour budget `k` — the certificate's bound on
    /// how many votes one outstanding search can add to any one image.
    k: usize,
    /// Image id → (votes, best distance). A BTreeMap so iteration (and
    /// with it the ranking's tie-break on equal keys) is deterministic.
    tallies: BTreeMap<u32, (u32, f32)>,
    /// Descriptor result sets folded in so far.
    absorbed: usize,
    /// Neighbours whose descriptor id had no image mapping — counted
    /// honestly rather than silently dropped.
    unmapped: u64,
}

impl ImageVoteAccumulator {
    /// An empty accumulator over the `image_of` descriptor→image map,
    /// for searches retaining at most `k` neighbours each.
    pub fn new(image_of: Arc<Vec<u32>>, k: usize) -> ImageVoteAccumulator {
        ImageVoteAccumulator {
            image_of,
            k,
            tallies: BTreeMap::new(),
            absorbed: 0,
            unmapped: 0,
        }
    }

    /// Folds one descriptor's retained neighbours into the tally: each
    /// neighbour casts one vote for its image and offers its distance as
    /// the image's best. Commutative across calls.
    pub fn absorb(&mut self, neighbors: &[Neighbor]) {
        for n in neighbors {
            let Some(&image) = self.image_of.get(n.id as usize) else {
                self.unmapped += 1;
                continue;
            };
            let slot = self.tallies.entry(image).or_insert((0, f32::INFINITY));
            slot.0 += 1;
            if n.dist.total_cmp(&slot.1).is_lt() {
                slot.1 = n.dist;
            }
        }
        self.absorbed += 1;
    }

    /// Descriptor result sets absorbed so far.
    pub fn absorbed(&self) -> usize {
        self.absorbed
    }

    /// Neighbours that mapped to no image (out-of-range descriptor ids).
    pub fn unmapped(&self) -> u64 {
        self.unmapped
    }

    /// Distinct images holding at least one vote.
    pub fn n_images(&self) -> usize {
        self.tallies.len()
    }

    /// The full image ranking: `(votes desc, best_dist asc, image asc)`.
    /// Deterministic, and independent of absorption order.
    pub fn ranking(&self) -> Vec<ImageVote> {
        let mut out: Vec<ImageVote> = self
            .tallies
            .iter()
            .map(|(&image, &(votes, best_dist))| ImageVote {
                image,
                votes,
                best_dist,
            })
            .collect();
        out.sort_by(|a, b| {
            b.votes
                .cmp(&a.votes)
                .then(a.best_dist.total_cmp(&b.best_dist))
                .then(a.image.cmp(&b.image))
        });
        out
    }

    /// The ordered ids of the top `m` images (shorter if fewer images
    /// hold votes).
    pub fn top_m(&self, m: usize) -> Vec<u32> {
        let mut out = self.ranking();
        out.truncate(m);
        out.iter().map(|v| v.image).collect()
    }

    /// Whether the current ordered top-`m` prefix is *provably* the final
    /// one, with `remaining` descriptor searches still outstanding — the
    /// `R·k` vote-margin argument from the [module docs](self). Trivially
    /// true when nothing is outstanding.
    pub fn certified_top_m(&self, m: usize, remaining: usize) -> bool {
        if remaining == 0 || m == 0 {
            return true;
        }
        let slack = (remaining as u64).saturating_mul(self.k as u64);
        let ranked = self.ranking();
        for i in 1..=m {
            let lead = ranked.get(i - 1).map_or(0, |v| u64::from(v.votes));
            let chase = ranked.get(i).map_or(0, |v| u64::from(v.votes));
            if lead <= chase + slack {
                return false;
            }
        }
        true
    }
}

/// When to abandon the remaining descriptor searches of an image query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImageStopRule {
    /// Never: run every descriptor to its own stop rule (the full-run
    /// baseline every early-stop cell is measured against).
    RunAll,
    /// Stop once the ordered top-`m` image prefix has survived `window`
    /// consecutive descriptor completions unchanged — the paper-shaped
    /// heuristic ("a fraction of the query points suffices").
    StableTop {
        /// Prefix length watched for stability.
        m: usize,
        /// Consecutive completions the prefix must survive unchanged.
        window: usize,
    },
    /// Stop as soon as the vote margins *prove* the top-`m` prefix final
    /// ([`ImageVoteAccumulator::certified_top_m`]) — never wrong, usually
    /// later than [`StableTop`](Self::StableTop).
    CertifiedTop {
        /// Prefix length the certificate covers.
        m: usize,
    },
}

impl ImageStopRule {
    /// The watched prefix length, if the rule has one.
    pub fn top_m(&self) -> Option<usize> {
        match self {
            ImageStopRule::RunAll => None,
            ImageStopRule::StableTop { m, .. } | ImageStopRule::CertifiedTop { m } => Some(*m),
        }
    }

    /// Stable label for tables and CSV.
    pub fn label(&self) -> String {
        match self {
            ImageStopRule::RunAll => "run-all".to_string(),
            ImageStopRule::StableTop { m, window } => format!("stable-top{m}-w{window}"),
            ImageStopRule::CertifiedTop { m } => format!("certified-top{m}"),
        }
    }
}

/// Evaluates an [`ImageStopRule`] across a stream of descriptor
/// completions. Feed it [`observe`](Self::observe) after every absorbed
/// result; it answers whether the remaining searches should be abandoned.
#[derive(Clone, Debug)]
pub struct ImageStopTracker {
    rule: ImageStopRule,
    /// Last observed top-`m` prefix (`StableTop` only).
    last_top: Option<Vec<u32>>,
    /// Consecutive completions the prefix has survived unchanged.
    streak: usize,
}

impl ImageStopTracker {
    /// A fresh tracker for `rule`.
    pub fn new(rule: ImageStopRule) -> ImageStopTracker {
        ImageStopTracker {
            rule,
            last_top: None,
            streak: 0,
        }
    }

    /// The rule being tracked.
    pub fn rule(&self) -> ImageStopRule {
        self.rule
    }

    /// Observes the accumulator state after a descriptor completion, with
    /// `remaining` searches still outstanding. Returns `true` when the
    /// rule says to abandon them. Never fires with nothing left to
    /// abandon — a fired stop would then be indistinguishable from (and
    /// is) a completed run.
    pub fn observe(&mut self, acc: &ImageVoteAccumulator, remaining: usize) -> bool {
        if remaining == 0 {
            return false;
        }
        match self.rule {
            ImageStopRule::RunAll => false,
            ImageStopRule::StableTop { m, window } => {
                let top = acc.top_m(m);
                if self.last_top.as_ref() == Some(&top) {
                    self.streak += 1;
                } else {
                    self.streak = 0;
                    self.last_top = Some(top);
                }
                self.streak >= window.max(1)
            }
            ImageStopRule::CertifiedTop { m } => acc.certified_top_m(m, remaining),
        }
    }
}

/// The top-`m` snapshot taken after each absorbed descriptor result —
/// what the descriptors-spent quality curves are computed from, the image
/// analogue of the per-chunk [`ChunkEvent`](crate::search::ChunkEvent).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImageVoteEvent {
    /// Descriptor results absorbed when the snapshot was taken (1-based).
    pub completions: usize,
    /// Ordered top-`m` image ids at that point.
    pub top: Vec<u32>,
}

/// Everything one finished image query produced.
#[derive(Clone, Debug)]
pub struct ImageOutcome {
    /// The query's ground-truth image label (carried through verbatim).
    pub label: u32,
    /// The final image ranking.
    pub ranking: Vec<ImageVote>,
    /// Descriptors the query arrived with.
    pub descriptors_total: usize,
    /// Descriptor searches run to their own stop rule and absorbed.
    pub descriptors_spent: usize,
    /// Descriptor searches abandoned by the image stop rule. Always
    /// `descriptors_spent + descriptors_abandoned == descriptors_total`.
    pub descriptors_abandoned: usize,
    /// Whether the vote margins at stop time *proved* the top-`m` prefix
    /// final (trivially true for a run with no abandonment). When set,
    /// the prefix agrees with the full run's — the proptested contract.
    pub certificate: bool,
    /// Aggregate fidelity: `Degraded` if any absorbed search lost chunks,
    /// else `Approximate` if any search stopped early or was abandoned,
    /// else `Exact`.
    pub fidelity: ResultFidelity,
    /// Chunks read across every absorbed descriptor search.
    pub chunks_read: u64,
    /// Collection descriptors lost to faults across absorbed searches.
    pub descriptors_lost: u64,
    /// Neighbour votes that mapped to no image.
    pub unmapped_votes: u64,
    /// Top-`m` snapshot after each absorbed result, in absorption order.
    pub events: Vec<ImageVoteEvent>,
}

impl ImageOutcome {
    /// The ordered ids of the first `m` ranked images (shorter if the
    /// ranking is).
    pub fn top_images(&self, m: usize) -> Vec<u32> {
        self.ranking.iter().take(m).map(|v| v.image).collect()
    }
}

/// Accumulator + stop tracker + accounting for one image query — the
/// shared core of the serving driver and the solo reference, so their
/// vote semantics, fidelity fold and certificate logic cannot drift.
#[derive(Clone, Debug)]
pub struct ImageAggregator {
    acc: ImageVoteAccumulator,
    tracker: ImageStopTracker,
    /// Prefix length of the per-completion event snapshots (the stop
    /// rule's `m` when it has one).
    event_top: usize,
    total: usize,
    spent: usize,
    abandoned: usize,
    degraded: bool,
    incomplete: bool,
    chunks_read: u64,
    descriptors_lost: u64,
    certificate: Option<bool>,
    events: Vec<ImageVoteEvent>,
}

impl ImageAggregator {
    /// An aggregator for a query of `total` descriptors under `rule`,
    /// with per-descriptor neighbour budget `k` and event snapshots of
    /// length `event_top` (overridden by the rule's own `m` if set).
    pub fn new(
        image_of: Arc<Vec<u32>>,
        k: usize,
        total: usize,
        rule: ImageStopRule,
        event_top: usize,
    ) -> ImageAggregator {
        ImageAggregator {
            acc: ImageVoteAccumulator::new(image_of, k),
            event_top: rule.top_m().unwrap_or(event_top),
            tracker: ImageStopTracker::new(rule),
            total,
            spent: 0,
            abandoned: 0,
            degraded: false,
            incomplete: false,
            chunks_read: 0,
            descriptors_lost: 0,
            certificate: None,
            events: Vec::new(),
        }
    }

    /// Descriptor searches not yet absorbed or abandoned.
    pub fn remaining(&self) -> usize {
        self.total - self.spent - self.abandoned
    }

    /// Whether every descriptor is accounted for (absorbed + abandoned).
    pub fn is_done(&self) -> bool {
        self.spent + self.abandoned == self.total
    }

    /// The vote tally so far.
    pub fn accumulator(&self) -> &ImageVoteAccumulator {
        &self.acc
    }

    /// Absorbs one completed descriptor search: votes, counters, fidelity
    /// inputs, event snapshot, then the stop rule. Returns `true` when
    /// the rule says to abandon the remaining searches — the caller then
    /// tears down its sibling sessions and calls
    /// [`abandon_rest`](Self::abandon_rest).
    pub fn absorb(&mut self, result: &SearchResult) -> bool {
        self.acc.absorb(&result.neighbors);
        self.spent += 1;
        self.chunks_read += result.log.chunks_read as u64;
        self.descriptors_lost += result.log.degradation.descriptors_lost;
        self.degraded |= result.log.degradation.is_degraded();
        self.incomplete |= !result.log.completed;
        self.events.push(ImageVoteEvent {
            completions: self.spent,
            top: self.acc.top_m(self.event_top),
        });
        self.tracker.observe(&self.acc, self.remaining())
    }

    /// Books the remaining searches as abandoned, records whether the
    /// stability certificate held at stop time, and returns how many were
    /// dropped.
    pub fn abandon_rest(&mut self) -> usize {
        let dropped = self.remaining();
        self.abandoned += dropped;
        if dropped > 0 {
            self.certificate = Some(self.acc.certified_top_m(self.event_top, dropped));
        }
        dropped
    }

    /// Finalises into an [`ImageOutcome`] for the query labelled `label`.
    pub fn into_outcome(self, label: u32) -> ImageOutcome {
        let fidelity = if self.degraded {
            ResultFidelity::Degraded
        } else if self.abandoned > 0 || self.incomplete {
            ResultFidelity::Approximate
        } else {
            ResultFidelity::Exact
        };
        ImageOutcome {
            label,
            ranking: self.acc.ranking(),
            descriptors_total: self.total,
            descriptors_spent: self.spent,
            descriptors_abandoned: self.abandoned,
            // No abandonment means the full run: the prefix trivially
            // agrees with itself.
            certificate: self.certificate.unwrap_or(self.abandoned == 0),
            fidelity,
            chunks_read: self.chunks_read,
            descriptors_lost: self.descriptors_lost,
            unmapped_votes: self.acc.unmapped(),
            events: self.events,
        }
    }
}

/// The serial reference for an image query: every descriptor searched
/// alone through [`Snapshot::search`] (the same per-descriptor params),
/// absorbed in descriptor order with no early termination. The
/// equivalence proptests compare the interleaved scheduler's rankings —
/// and, descriptor by descriptor, its retained results — against this.
///
/// Returns the outcome plus the per-descriptor results it absorbed.
pub fn solo_image_search(
    snapshot: &Snapshot,
    label: u32,
    descriptors: &[Vector],
    params: &SearchParams,
    image_of: &Arc<Vec<u32>>,
) -> Result<(ImageOutcome, Vec<SearchResult>)> {
    let mut agg = ImageAggregator::new(
        Arc::clone(image_of),
        params.k,
        descriptors.len(),
        ImageStopRule::RunAll,
        DEFAULT_EVENT_TOP,
    );
    let mut results = Vec::with_capacity(descriptors.len());
    for q in descriptors {
        let result = snapshot.search(q, params)?;
        agg.absorb(&result);
        results.push(result);
    }
    Ok((agg.into_outcome(label), results))
}

/// Event-snapshot prefix length when the stop rule does not name one
/// (matches the experiments' precision@10 reporting).
pub const DEFAULT_EVENT_TOP: usize = 10;

#[cfg(test)]
mod tests {
    use super::*;

    fn map(of: &[u32]) -> Arc<Vec<u32>> {
        Arc::new(of.to_vec())
    }

    fn nb(id: u32, dist: f32) -> Neighbor {
        Neighbor { id, dist }
    }

    #[test]
    fn ranking_orders_by_votes_then_distance_then_id() {
        // Descriptors 0,1 → image 0; 2,3 → image 1; 4 → image 2.
        let mut acc = ImageVoteAccumulator::new(map(&[0, 0, 1, 1, 2]), 4);
        acc.absorb(&[nb(0, 2.0), nb(2, 1.0), nb(4, 1.0)]);
        acc.absorb(&[nb(1, 3.0), nb(3, 0.5)]);
        let ranking = acc.ranking();
        // image 1: 2 votes best 0.5; image 0: 2 votes best 2.0; image 2: 1 vote.
        assert_eq!(
            ranking
                .iter()
                .map(|v| (v.image, v.votes))
                .collect::<Vec<_>>(),
            vec![(1, 2), (0, 2), (2, 1)]
        );
        let Some(first) = ranking.first() else {
            panic!("ranking is non-empty");
        };
        assert_eq!(first.best_dist, 0.5);
    }

    #[test]
    fn equal_votes_and_distance_tie_break_on_image_id() {
        let mut acc = ImageVoteAccumulator::new(map(&[5, 3]), 2);
        acc.absorb(&[nb(0, 1.0), nb(1, 1.0)]);
        assert_eq!(acc.top_m(2), vec![3, 5]);
    }

    #[test]
    fn absorption_order_does_not_change_the_ranking() {
        let of = map(&[0, 1, 2, 0, 1]);
        let a = [nb(0, 2.0), nb(3, 1.5)];
        let b = [nb(1, 0.7), nb(4, 2.5)];
        let c = [nb(2, 9.0)];
        let mut fwd = ImageVoteAccumulator::new(Arc::clone(&of), 2);
        fwd.absorb(&a);
        fwd.absorb(&b);
        fwd.absorb(&c);
        let mut rev = ImageVoteAccumulator::new(of, 2);
        rev.absorb(&c);
        rev.absorb(&b);
        rev.absorb(&a);
        assert_eq!(fwd.ranking(), rev.ranking());
    }

    #[test]
    fn out_of_range_descriptor_ids_are_counted_not_dropped_silently() {
        let mut acc = ImageVoteAccumulator::new(map(&[0]), 2);
        acc.absorb(&[nb(0, 1.0), nb(99, 1.0)]);
        assert_eq!(acc.unmapped(), 1);
        assert_eq!(acc.n_images(), 1);
    }

    #[test]
    fn certificate_requires_margin_above_remaining_times_k() {
        let of = map(&[0, 0, 0, 1]);
        let mut acc = ImageVoteAccumulator::new(Arc::clone(&of), 1);
        // Image 0 has 3 votes, image 1 has 1: margin 2.
        acc.absorb(&[nb(0, 1.0)]);
        acc.absorb(&[nb(1, 1.0)]);
        acc.absorb(&[nb(2, 1.0)]);
        acc.absorb(&[nb(3, 2.0)]);
        // One remaining search (k = 1) cannot close a margin of 2 …
        assert!(acc.certified_top_m(1, 1));
        // … but two could tie it, and a tie is not a certified win.
        assert!(!acc.certified_top_m(1, 2));
        // Boundary m..m+1 (1 vote vs nothing) is never certified while
        // searches remain.
        assert!(!acc.certified_top_m(2, 1));
        // Nothing remaining certifies any prefix.
        assert!(acc.certified_top_m(2, 0));
    }

    #[test]
    fn certificate_is_sound_under_adversarial_remaining_votes() {
        // Exhaustive adversary on a small universe: whenever the
        // certificate fires, no completion of the remaining searches can
        // change the certified prefix.
        let of = map(&[0, 0, 0, 0, 1, 1, 2]);
        let k = 2;
        let absorbed: [&[Neighbor]; 3] = [
            &[nb(0, 1.0), nb(4, 2.0)],
            &[nb(1, 1.0), nb(2, 3.0)],
            &[nb(3, 1.0), nb(6, 1.0)],
        ];
        let mut acc = ImageVoteAccumulator::new(Arc::clone(&of), k);
        for r in absorbed {
            acc.absorb(r);
        }
        let remaining = 1usize;
        for m in 1..=3usize {
            if !acc.certified_top_m(m, remaining) {
                continue;
            }
            let prefix: Vec<u32> = acc.top_m(m);
            // Adversary: the remaining search throws both votes at any
            // single descriptor (the worst case for one image's tally).
            for target in 0..of.len() {
                let mut done = acc.clone();
                let votes: Vec<Neighbor> = (0..k).map(|_| nb(target as u32, 0.0)).collect();
                done.absorb(&votes);
                assert_eq!(
                    done.top_m(m),
                    prefix,
                    "certified top-{m} changed when the last search hit {target}"
                );
            }
        }
    }

    #[test]
    fn stable_top_fires_after_window_unchanged_completions() {
        let of = map(&[0, 0, 0, 1]);
        let rule = ImageStopRule::StableTop { m: 1, window: 2 };
        let mut acc = ImageVoteAccumulator::new(Arc::clone(&of), 1);
        let mut tracker = ImageStopTracker::new(rule);
        acc.absorb(&[nb(0, 1.0)]);
        assert!(
            !tracker.observe(&acc, 3),
            "first observation seeds the prefix"
        );
        acc.absorb(&[nb(1, 1.0)]);
        assert!(!tracker.observe(&acc, 2), "one stable completion < window");
        acc.absorb(&[nb(2, 1.0)]);
        assert!(tracker.observe(&acc, 1), "two stable completions = window");
    }

    #[test]
    fn stable_top_streak_resets_when_the_prefix_changes() {
        let of = map(&[0, 1]);
        let rule = ImageStopRule::StableTop { m: 1, window: 1 };
        let mut acc = ImageVoteAccumulator::new(Arc::clone(&of), 2);
        let mut tracker = ImageStopTracker::new(rule);
        acc.absorb(&[nb(0, 1.0)]);
        assert!(!tracker.observe(&acc, 3));
        // Image 1 takes the lead: the streak restarts.
        acc.absorb(&[nb(1, 0.5), nb(1, 0.6)]);
        assert!(!tracker.observe(&acc, 2));
        acc.absorb(&[]);
        assert!(tracker.observe(&acc, 1), "unchanged again: fires");
    }

    #[test]
    fn tracker_never_fires_with_nothing_left_to_abandon() {
        let rule = ImageStopRule::StableTop { m: 1, window: 1 };
        let mut acc = ImageVoteAccumulator::new(map(&[0]), 1);
        let mut tracker = ImageStopTracker::new(rule);
        acc.absorb(&[nb(0, 1.0)]);
        tracker.observe(&acc, 1);
        acc.absorb(&[nb(0, 1.0)]);
        assert!(!tracker.observe(&acc, 0));
    }

    #[test]
    fn aggregator_accounting_always_sums_to_total() {
        let of = map(&[0, 0, 1]);
        let rule = ImageStopRule::StableTop { m: 1, window: 1 };
        let mut agg = ImageAggregator::new(Arc::clone(&of), 1, 5, rule, 10);
        let result = SearchResult {
            neighbors: vec![nb(0, 1.0)],
            log: crate::search::SearchLog {
                completed: true,
                ..Default::default()
            },
        };
        assert!(!agg.absorb(&result), "first completion seeds");
        assert!(agg.absorb(&result), "second identical completion fires");
        let dropped = agg.abandon_rest();
        assert_eq!(dropped, 3);
        assert!(agg.is_done());
        let outcome = agg.into_outcome(7);
        assert_eq!(outcome.label, 7);
        assert_eq!(
            outcome.descriptors_spent + outcome.descriptors_abandoned,
            outcome.descriptors_total
        );
        assert_eq!(outcome.fidelity, ResultFidelity::Approximate);
        assert_eq!(outcome.events.len(), 2);
    }

    #[test]
    fn full_run_of_exact_searches_reports_exact_fidelity() {
        let of = map(&[0]);
        let mut agg = ImageAggregator::new(Arc::clone(&of), 1, 1, ImageStopRule::RunAll, 10);
        let result = SearchResult {
            neighbors: vec![nb(0, 1.0)],
            log: crate::search::SearchLog {
                completed: true,
                ..Default::default()
            },
        };
        agg.absorb(&result);
        let outcome = agg.into_outcome(0);
        assert_eq!(outcome.fidelity, ResultFidelity::Exact);
        assert!(
            outcome.certificate,
            "a full run trivially agrees with itself"
        );
        assert_eq!(outcome.descriptors_abandoned, 0);
    }

    #[test]
    fn empty_descriptor_set_is_a_trivially_exact_outcome() {
        let agg = ImageAggregator::new(map(&[]), 4, 0, ImageStopRule::RunAll, 10);
        assert!(agg.is_done());
        let outcome = agg.into_outcome(3);
        assert_eq!(outcome.descriptors_total, 0);
        assert!(outcome.ranking.is_empty());
        assert_eq!(outcome.fidelity, ResultFidelity::Exact);
        assert!(outcome.certificate);
    }

    #[test]
    fn stop_rule_labels_are_stable() {
        assert_eq!(ImageStopRule::RunAll.label(), "run-all");
        assert_eq!(
            ImageStopRule::StableTop { m: 10, window: 2 }.label(),
            "stable-top10-w2"
        );
        assert_eq!(
            ImageStopRule::CertifiedTop { m: 5 }.label(),
            "certified-top5"
        );
    }
}
