//! The current-neighbour set maintained during a chunk scan.
//!
//! The implementation moved to `eff2-descriptor` so the fused block-scan
//! kernel ([`eff2_descriptor::kernels::scan_block_into`]) can fold the
//! top-k offer loop into the distance computation; this module re-exports
//! it for all existing `eff2_core::neighbors` users.

pub use eff2_descriptor::neighbors::{Neighbor, NeighborSet};
