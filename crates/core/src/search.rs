//! The approximate search algorithm of §4.3.
//!
//! For a query descriptor the search (1) computes the distance from the
//! query to every chunk centroid and ranks chunks by increasing distance,
//! (2) fetches and scans chunks in ranked order, updating the current
//! neighbour set, and (3) stops according to the [`StopRule`]:
//!
//! * [`StopRule::Chunks`] — "the search might simply stop once *n* chunks
//!   have been processed";
//! * [`StopRule::VirtualTime`] — "or when a time threshold has been
//!   passed" (checked at chunk granularity: a chunk's results only exist
//!   once the whole chunk is processed — the effect that makes BAG's giant
//!   chunks hurt);
//! * [`StopRule::ToCompletion`] — "it stops when k neighbors have been
//!   found and when the minimum distance to the next chunk is greater than
//!   the current distance to the kth neighbor", where the minimum distance
//!   to a chunk is `d(q, centroid) − radius`. Because ranking is by
//!   centroid distance while the bound subtracts the radius, the bound is
//!   not monotone along the ranked order; the implementation uses a
//!   suffix-minimum over the remaining chunks so completion is *exact*
//!   (property-tested against a sequential scan).
//!
//! Every processed chunk appends a [`ChunkEvent`] carrying the virtual
//! completion time and a snapshot of the current top-k — the raw material
//! for all of the paper's quality-vs-time figures.

use crate::neighbors::Neighbor;
use crate::session::{ChunkRanking, SearchSession};
use eff2_descriptor::Vector;
use eff2_storage::diskmodel::{DiskModel, VirtualDuration};
use eff2_storage::source::{ChunkSource, PrefetchSource};
use eff2_storage::{ChunkStore, Result};
use std::sync::Arc;

/// When to abandon the chunk scan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StopRule {
    /// Stop after this many chunks have been processed.
    Chunks(usize),
    /// Stop at the first chunk boundary at or after this much virtual time
    /// (measured from query start, including the index read).
    VirtualTime(VirtualDuration),
    /// Run until the result is provably exact.
    ToCompletion,
    /// Run until the result is provably a (1+ε)-approximation: stop when
    /// `(1+ε) · min_remaining_bound > kth distance`. This is the
    /// contraction trick of the paper's related work (Weber & Böhm's
    /// VA-BND, Ciaccia & Patella's AC-NN): ε "makes chunks somehow
    /// smaller". `ToCompletionEps(0.0)` ≡ [`StopRule::ToCompletion`].
    ToCompletionEps(f32),
}

/// Search parameters.
#[derive(Clone, Copy, Debug)]
pub struct SearchParams {
    /// Number of neighbours to return (the paper uses k = 30).
    pub k: usize,
    /// Stop rule.
    pub stop: StopRule,
    /// How many chunks the pipelined reader may fetch ahead.
    pub prefetch_depth: usize,
    /// Record a top-k identifier snapshot in every [`ChunkEvent`] (needed
    /// for precision-of-intermediate-results curves; costs k words per
    /// chunk).
    pub log_snapshots: bool,
}

impl SearchParams {
    /// `k` neighbours, run to completion, with snapshots on.
    pub fn exact(k: usize) -> Self {
        SearchParams {
            k,
            stop: StopRule::ToCompletion,
            prefetch_depth: 2,
            log_snapshots: true,
        }
    }

    /// `k` neighbours from the `n` nearest chunks.
    pub fn approximate(k: usize, n_chunks: usize) -> Self {
        SearchParams {
            k,
            stop: StopRule::Chunks(n_chunks),
            prefetch_depth: 2,
            log_snapshots: true,
        }
    }
}

/// Log entry for one processed chunk.
#[derive(Clone, Debug)]
pub struct ChunkEvent {
    /// 0-based position in the ranked order.
    pub rank: usize,
    /// Chunk id within the store.
    pub chunk_id: usize,
    /// Descriptors scanned in this chunk.
    pub count: u32,
    /// Bytes transferred for this chunk (padded page span).
    pub bytes_read: u64,
    /// Virtual time at which this chunk's results became available
    /// (measured from query start).
    pub completed_at: VirtualDuration,
    /// Current kth-best distance after this chunk (∞ until k are held).
    pub kth_dist: f32,
    /// Snapshot of the current top-k ids (increasing distance), if
    /// requested.
    pub topk_ids: Vec<u32>,
}

/// What a search lost to unreadable chunks.
///
/// Stays all-zero unless a [`SkipPolicy`](crate::session::SkipPolicy)
/// allowed the session to continue past a permanently failed chunk — an
/// honest record of everything the answer was *not* computed over.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Degradation {
    /// Ranked chunks that could not be read and were skipped.
    pub chunks_lost: usize,
    /// Descriptors those chunks would have contributed to the scan.
    pub descriptors_lost: u64,
    /// Ids of the skipped chunks, in ranked (skip) order.
    pub lost_chunks: Vec<usize>,
}

impl Degradation {
    /// Whether anything was lost.
    pub fn is_degraded(&self) -> bool {
        self.chunks_lost > 0
    }
}

/// How much the result can be trusted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResultFidelity {
    /// Completion was proved over every ranked chunk: the answer is exact.
    Exact,
    /// The stop rule ended the scan early; the answer is the paper's
    /// approximate result.
    Approximate,
    /// Chunks were lost to faults: the answer omits data it should have
    /// seen, beyond what the stop rule alone would discard.
    Degraded,
}

/// Everything observed while executing one query.
#[derive(Clone, Debug, Default)]
pub struct SearchLog {
    /// Virtual cost of reading and ranking the chunk index.
    pub index_read_time: VirtualDuration,
    /// Per-chunk events in processing order.
    pub events: Vec<ChunkEvent>,
    /// Chunks processed.
    pub chunks_read: usize,
    /// Descriptors scanned.
    pub descriptors_scanned: u64,
    /// Bytes transferred (chunk file only; includes any rerank-tail
    /// reads).
    pub bytes_read: u64,
    /// Bytes of `bytes_read` spent by the exact rerank tail of a
    /// quantized search (zero for uncompressed searches).
    pub rerank_bytes: u64,
    /// Chunks re-read by the exact rerank tail (zero for uncompressed
    /// searches).
    pub rerank_chunks: usize,
    /// Centroid distance evaluations the ranking spent: `n_chunks` for
    /// flat ranking, `n_cells` plus expanded members for two-level.
    pub centroid_evals: u64,
    /// Total virtual time of the query.
    pub total_virtual: VirtualDuration,
    /// Real wall-clock time of the query.
    pub wall: std::time::Duration,
    /// Whether the search proved its result exact (completion reached).
    pub completed: bool,
    /// What was lost to unreadable chunks (all-zero in fault-free runs).
    pub degradation: Degradation,
}

impl SearchLog {
    /// Classifies the result: [`ResultFidelity::Degraded`] if any chunk
    /// was lost, otherwise exact/approximate per the completion proof.
    pub fn fidelity(&self) -> ResultFidelity {
        if self.degradation.is_degraded() {
            ResultFidelity::Degraded
        } else if self.completed {
            ResultFidelity::Exact
        } else {
            ResultFidelity::Approximate
        }
    }
}

/// A query's answer plus its log.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The neighbours found, in increasing distance order.
    pub neighbors: Vec<Neighbor>,
    /// The observation log.
    pub log: SearchLog,
}

/// Executes one query against a chunk store under the given cost model.
///
/// This is ranking + drive-to-stop over a [`SearchSession`] with the
/// default prefetching source — see [`crate::session`] for the resumable
/// form and for answering many stop rules from one scan.
pub fn search(
    store: &ChunkStore,
    model: &DiskModel,
    query: &Vector,
    params: &SearchParams,
) -> Result<SearchResult> {
    let mut session = SearchSession::open(store, model, query, params);
    session.run_to_stop()?;
    Ok(session.into_result())
}

/// [`search`] drawing chunks from an explicit [`ChunkSource`] (e.g. a
/// shared [`eff2_storage::source::ResidentSource`] for hot serving).
pub fn search_with_source(
    store: &ChunkStore,
    model: &DiskModel,
    query: &Vector,
    params: &SearchParams,
    source: Arc<dyn ChunkSource>,
) -> Result<SearchResult> {
    let mut session = SearchSession::with_source(store, model, query, params, source);
    session.run_to_stop()?;
    Ok(session.into_result())
}

/// Executes a batch of queries in parallel over a shared read-only store.
///
/// Parallelism stops at the query boundary: each query runs the full
/// sequential [`search`] with its own chunk stream and its own
/// [`PipelineClock`], so the per-query virtual-time accounting — and with
/// it every [`ChunkEvent`] field (rank, chunk id, count, bytes,
/// `completed_at`, kth distance, top-k snapshot) — is bit-identical to a
/// one-query-at-a-time run. The determinism test asserts exactly that.
/// Results come back in query order.
///
/// Two resources are pooled across the batch without affecting results:
/// each worker thread recycles one [`ChunkRanking`] buffer across its
/// queries ([`ChunkRanking::rank_into`]), and all workers draw from one
/// [`PrefetchSource`] whose single-flight table coalesces concurrent reads
/// of the same chunk into one disk access.
pub fn search_batch(
    store: &ChunkStore,
    model: &DiskModel,
    queries: &[Vector],
    params: &SearchParams,
) -> Result<Vec<SearchResult>> {
    search_batch_threads(store, model, queries, params, eff2_parallel::max_threads())
}

/// [`search_batch`] with an explicit worker-thread count (the batch bench
/// sweeps this; `search_batch` itself uses [`eff2_parallel::max_threads`]).
pub fn search_batch_threads(
    store: &ChunkStore,
    model: &DiskModel,
    queries: &[Vector],
    params: &SearchParams,
    threads: usize,
) -> Result<Vec<SearchResult>> {
    let source: Arc<dyn ChunkSource> = Arc::new(PrefetchSource::new(store, params.prefetch_depth));
    batch_over_source(store, model, queries, params, threads, source)
}

/// [`search_batch`] over a shared [`ChunkSource`]: every worker draws its
/// chunks from the same source, so a [`ResidentSource`] cache warmed by one
/// query serves the next — the hot-serving configuration. Per-query
/// virtual-time accounting is unchanged (cache hits still charge the
/// modelled I/O), so results are bit-identical to [`search_batch`].
///
/// [`ResidentSource`]: eff2_storage::source::ResidentSource
pub fn search_batch_with_source(
    store: &ChunkStore,
    model: &DiskModel,
    queries: &[Vector],
    params: &SearchParams,
    source: Arc<dyn ChunkSource>,
) -> Result<Vec<SearchResult>> {
    batch_over_source(
        store,
        model,
        queries,
        params,
        eff2_parallel::max_threads(),
        source,
    )
}

/// The shared batch driver: per-worker [`ChunkRanking`] scratch recycled
/// via [`ChunkRanking::rank_into`] (the ranking's vectors are allocated
/// once per worker, not once per query), sessions built over the shared
/// `source`. The scratch only recycles allocations — ranking *contents*
/// are fully rewritten per query, so results cannot depend on it.
fn batch_over_source(
    store: &ChunkStore,
    model: &DiskModel,
    queries: &[Vector],
    params: &SearchParams,
    threads: usize,
    source: Arc<dyn ChunkSource>,
) -> Result<Vec<SearchResult>> {
    eff2_parallel::try_par_map_scratch_threads(
        threads,
        queries,
        ChunkRanking::default,
        |scratch, _, q| {
            scratch.rank_into(store, model, q);
            let mut session = SearchSession::from_ranking(
                std::mem::take(scratch),
                model,
                q,
                params,
                Arc::clone(&source),
            );
            session.run_to_stop()?;
            let (result, ranking) = session.into_result_and_ranking();
            *scratch = ranking;
            Ok(result)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunkers::{ChunkFormer, RoundRobinChunker, SrTreeChunker};
    use crate::scan::scan_knn;
    use eff2_descriptor::{Descriptor, DescriptorSet};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eff2_search_{tag}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn lumpy_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| {
                let blob = (i % 5) as f32 * 20.0;
                let mut v = Vector::splat(blob);
                v[0] += ((i * 31) % 23) as f32 * 0.3;
                v[3] -= ((i * 17) % 19) as f32 * 0.2;
                Descriptor::new(i as u32, v)
            })
            .collect()
    }

    fn build_store(tag: &str, set: &DescriptorSet, former: &dyn ChunkFormer) -> ChunkStore {
        let formation = former.form(set);
        ChunkStore::create(&tmp_dir(tag), "ix", set, &formation.chunks, 512).expect("create")
    }

    #[test]
    fn to_completion_matches_sequential_scan() {
        let set = lumpy_set(500);
        for (tag, former) in [
            ("sr", &SrTreeChunker { leaf_size: 40 } as &dyn ChunkFormer),
            (
                "rr",
                &RoundRobinChunker { n_chunks: 12 } as &dyn ChunkFormer,
            ),
        ] {
            let store = build_store(&format!("complete_{tag}"), &set, former);
            let model = DiskModel::ata_2005();
            for qpos in [0usize, 123, 444] {
                let q = set.vector_owned(qpos);
                let got = search(&store, &model, &q, &SearchParams::exact(10)).expect("search");
                assert!(got.log.completed, "{tag}: must prove completion");
                let want = scan_knn(&set, &q, 10);
                assert_eq!(got.neighbors.len(), want.len());
                for (g, w) in got.neighbors.iter().zip(want.iter()) {
                    assert!(
                        (g.dist - w.dist).abs() < 1e-4,
                        "{tag}: {g:?} vs {w:?} at q{qpos}"
                    );
                }
            }
        }
    }

    #[test]
    fn completion_stops_early_for_dataset_queries() {
        // A query that *is* a dataset point inside a tight blob should not
        // need every chunk.
        let set = lumpy_set(1_000);
        let store = build_store("early", &set, &SrTreeChunker { leaf_size: 50 });
        let q = set.vector_owned(7);
        let got =
            search(&store, &DiskModel::ata_2005(), &q, &SearchParams::exact(5)).expect("search");
        assert!(got.log.completed);
        assert!(
            got.log.chunks_read < store.n_chunks(),
            "read {} of {}",
            got.log.chunks_read,
            store.n_chunks()
        );
    }

    #[test]
    fn chunk_stop_rule_reads_exactly_n() {
        let set = lumpy_set(400);
        let store = build_store("kchunks", &set, &SrTreeChunker { leaf_size: 25 });
        let q = Vector::splat(10.0);
        let got = search(
            &store,
            &DiskModel::ata_2005(),
            &q,
            &SearchParams::approximate(10, 3),
        )
        .expect("search");
        assert_eq!(got.log.chunks_read, 3);
        assert_eq!(got.log.events.len(), 3);
        assert!(!got.log.completed);
    }

    #[test]
    fn chunk_stop_rule_clamped_to_store() {
        let set = lumpy_set(100);
        let store = build_store("clamp", &set, &SrTreeChunker { leaf_size: 50 });
        let got = search(
            &store,
            &DiskModel::ata_2005(),
            &Vector::ZERO,
            &SearchParams::approximate(5, 99),
        )
        .expect("search");
        assert_eq!(got.log.chunks_read, store.n_chunks());
        assert!(got.log.completed, "exhausting all chunks is completion");
    }

    #[test]
    fn virtual_time_stop_rule() {
        let set = lumpy_set(600);
        let store = build_store("vtime", &set, &SrTreeChunker { leaf_size: 20 });
        let model = DiskModel::ata_2005();
        // Budget: index read + ~3 chunks' worth of time.
        let per_chunk = model.io_time(20 * 100 + 512).max(model.scan_time(20));
        let budget = model.index_read_time(store.n_chunks(), store.index_bytes())
            + VirtualDuration::from_secs(per_chunk.as_secs() * 3.5);
        let got = search(
            &store,
            &model,
            &Vector::ZERO,
            &SearchParams {
                k: 10,
                stop: StopRule::VirtualTime(budget),
                prefetch_depth: 2,
                log_snapshots: false,
            },
        )
        .expect("search");
        assert!(got.log.chunks_read >= 1 && got.log.chunks_read <= 6);
        // The stop fires at the first chunk boundary past the budget.
        let last = got.log.events.last().expect("at least one event");
        assert!(last.completed_at >= budget || got.log.chunks_read == store.n_chunks());
    }

    #[test]
    fn events_have_monotone_virtual_times_and_shrinking_kth() {
        let set = lumpy_set(500);
        let store = build_store("mono", &set, &SrTreeChunker { leaf_size: 30 });
        let got = search(
            &store,
            &DiskModel::ata_2005(),
            &Vector::splat(5.0),
            &SearchParams::exact(10),
        )
        .expect("search");
        let mut last_t = got.log.index_read_time;
        let mut last_k = f32::INFINITY;
        for e in &got.log.events {
            assert!(e.completed_at > last_t);
            assert!(e.kth_dist <= last_k);
            last_t = e.completed_at;
            last_k = e.kth_dist;
        }
        assert_eq!(got.log.total_virtual, last_t);
    }

    #[test]
    fn ranked_order_is_by_centroid_distance() {
        let set = lumpy_set(300);
        let store = build_store("rank", &set, &SrTreeChunker { leaf_size: 30 });
        let q = Vector::splat(40.0);
        let got =
            search(&store, &DiskModel::ata_2005(), &q, &SearchParams::exact(5)).expect("search");
        let mut last = f32::NEG_INFINITY;
        for e in &got.log.events {
            let d = store.metas()[e.chunk_id].centroid.dist(&q);
            assert!(d >= last - 1e-5, "chunks must arrive in centroid order");
            last = d;
        }
    }

    #[test]
    fn k_zero_reads_nothing() {
        let set = lumpy_set(100);
        let store = build_store("kzero", &set, &SrTreeChunker { leaf_size: 25 });
        let got = search(
            &store,
            &DiskModel::ata_2005(),
            &Vector::ZERO,
            &SearchParams {
                k: 0,
                stop: StopRule::ToCompletion,
                prefetch_depth: 1,
                log_snapshots: false,
            },
        )
        .expect("search");
        assert!(got.neighbors.is_empty());
        assert_eq!(got.log.chunks_read, 0);
        assert!(
            got.log.completed,
            "an empty answer is trivially exact: no descriptor can enter the top-0"
        );
    }

    #[test]
    fn k_zero_is_completed_under_every_stop_rule() {
        let set = lumpy_set(100);
        let store = build_store("kzerorules", &set, &SrTreeChunker { leaf_size: 25 });
        let model = DiskModel::ata_2005();
        for stop in [
            StopRule::Chunks(2),
            StopRule::VirtualTime(VirtualDuration::from_ms(30.0)),
            StopRule::ToCompletion,
            StopRule::ToCompletionEps(0.5),
        ] {
            let got = search(
                &store,
                &model,
                &Vector::ZERO,
                &SearchParams {
                    k: 0,
                    stop,
                    prefetch_depth: 1,
                    log_snapshots: false,
                },
            )
            .expect("search");
            assert!(got.neighbors.is_empty());
            assert_eq!(got.log.chunks_read, 0, "{stop:?} must read nothing");
            assert!(got.log.completed, "{stop:?} must report completion");
        }
    }

    #[test]
    fn k_larger_than_collection_returns_all() {
        let set = lumpy_set(40);
        let store = build_store("kbig", &set, &SrTreeChunker { leaf_size: 10 });
        let got = search(
            &store,
            &DiskModel::ata_2005(),
            &Vector::ZERO,
            &SearchParams::exact(100),
        )
        .expect("search");
        assert_eq!(got.neighbors.len(), 40);
        assert!(got.log.completed);
    }

    #[test]
    fn snapshots_track_topk() {
        let set = lumpy_set(200);
        let store = build_store("snap", &set, &SrTreeChunker { leaf_size: 20 });
        let q = set.vector_owned(3);
        let got =
            search(&store, &DiskModel::ata_2005(), &q, &SearchParams::exact(5)).expect("search");
        let final_ids: Vec<u32> = got.neighbors.iter().map(|n| n.id).collect();
        let last = got.log.events.last().expect("events");
        assert_eq!(last.topk_ids, final_ids);
        for e in &got.log.events {
            assert!(e.topk_ids.len() <= 5);
        }
    }

    #[test]
    fn eps_zero_equals_to_completion() {
        let set = lumpy_set(500);
        let store = build_store("epszero", &set, &SrTreeChunker { leaf_size: 30 });
        let model = DiskModel::ata_2005();
        let q = set.vector_owned(99);
        let exact = search(&store, &model, &q, &SearchParams::exact(10)).expect("exact");
        let eps0 = search(
            &store,
            &model,
            &q,
            &SearchParams {
                k: 10,
                stop: StopRule::ToCompletionEps(0.0),
                prefetch_depth: 2,
                log_snapshots: false,
            },
        )
        .expect("eps0");
        assert!(eps0.log.completed);
        assert_eq!(
            exact.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
            eps0.neighbors.iter().map(|n| n.id).collect::<Vec<_>>()
        );
        assert_eq!(exact.log.chunks_read, eps0.log.chunks_read);
    }

    #[test]
    fn eps_relaxation_reads_fewer_chunks_and_bounds_error() {
        let set = lumpy_set(800);
        let store = build_store("epsrelax", &set, &SrTreeChunker { leaf_size: 25 });
        let model = DiskModel::ata_2005();
        let mut fewer_somewhere = false;
        // Off-dataset queries: the kth distance is large relative to the
        // chunk bounds, so the (1+ε) contraction has room to bite.
        let queries: Vec<Vector> = (0..6)
            .map(|i| {
                let mut v = Vector::splat(6.0 + i as f32 * 7.0);
                v[1] -= 9.0;
                v[4] += 5.0;
                v
            })
            .collect();
        for q in queries {
            let exact = search(&store, &model, &q, &SearchParams::exact(8)).expect("exact");
            let eps = 1.0f32;
            let relaxed = search(
                &store,
                &model,
                &q,
                &SearchParams {
                    k: 8,
                    stop: StopRule::ToCompletionEps(eps),
                    prefetch_depth: 2,
                    log_snapshots: false,
                },
            )
            .expect("relaxed");
            assert!(relaxed.log.chunks_read <= exact.log.chunks_read);
            if relaxed.log.chunks_read < exact.log.chunks_read {
                fewer_somewhere = true;
            }
            // The certified bound: every returned distance is within
            // (1+ε) of the true kth distance.
            let true_kth = exact.neighbors.last().expect("k results").dist;
            for n in &relaxed.neighbors {
                assert!(n.dist <= true_kth * (1.0 + eps) + 1e-4);
            }
        }
        assert!(fewer_somewhere, "ε = 1.0 should save chunks on some query");
    }

    #[test]
    fn virtual_time_includes_index_read() {
        let set = lumpy_set(100);
        let store = build_store("idx", &set, &SrTreeChunker { leaf_size: 25 });
        let model = DiskModel::ata_2005();
        let got = search(&store, &model, &Vector::ZERO, &SearchParams::exact(5)).expect("search");
        assert!(got.log.total_virtual > got.log.index_read_time);
        assert!(got.log.index_read_time.as_ms() > 0.0);
    }
}
