//! An immutable, cheaply shareable view of a chunk index.
//!
//! A [`Snapshot`] is what a *serving* layer holds: the pairing of a
//! [`ChunkStore`] (itself an `Arc`-backed handle over the mapped index
//! file) with the [`DiskModel`] its timings are reported under, `Clone` in
//! O(1) and safe to hand to any number of concurrent schedulers, workers
//! or sessions. Nothing behind a snapshot ever mutates — the chunk-index
//! files are write-once — so two clones always rank, bound and search
//! bit-identically.
//!
//! [`ChunkIndex`] remains the build/open entry point;
//! [`ChunkIndex::snapshot`] yields the serving view.

use crate::index::ChunkIndex;
use crate::search::{SearchParams, SearchResult};
use crate::session::{ChunkRanking, SearchSession};
use eff2_descriptor::Vector;
use eff2_storage::diskmodel::DiskModel;
use eff2_storage::epoch::FoldedDelta;
use eff2_storage::source::{ChunkSource, PrefetchSource, ResidentSource};
use eff2_storage::{ChunkStore, Result};
use std::sync::Arc;

/// An immutable view of one chunk index plus its cost model.
///
/// See the [module docs](self) for the sharing contract.
#[derive(Clone, Debug)]
pub struct Snapshot {
    store: ChunkStore,
    model: DiskModel,
}

impl Snapshot {
    /// Pairs an open store with a cost model.
    pub fn new(store: ChunkStore, model: DiskModel) -> Snapshot {
        Snapshot { store, model }
    }

    /// The underlying store.
    pub fn store(&self) -> &ChunkStore {
        &self.store
    }

    /// The cost model.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Number of chunks in the index.
    pub fn n_chunks(&self) -> usize {
        self.store.n_chunks()
    }

    /// Ranks all chunks for `query` (allocating fresh buffers).
    pub fn rank(&self, query: &Vector) -> ChunkRanking {
        ChunkRanking::rank(&self.store, &self.model, query)
    }

    /// Ranks all chunks for `query` into `ranking`, reusing its buffers.
    pub fn rank_into(&self, ranking: &mut ChunkRanking, query: &Vector) {
        ranking.rank_into(&self.store, &self.model, query);
    }

    /// A detached session for `query`: the caller feeds chunks through
    /// [`SearchSession::step_with`] — the scheduler's mode.
    pub fn session(&self, query: &Vector, params: &SearchParams) -> SearchSession {
        SearchSession::detached(&self.store, &self.model, query, params)
    }

    /// [`session`](Self::session) over a pre-computed ranking (see
    /// [`rank_into`](Self::rank_into) for buffer reuse).
    pub fn session_from_ranking(
        &self,
        ranking: ChunkRanking,
        query: &Vector,
        params: &SearchParams,
    ) -> SearchSession {
        SearchSession::detached_from_ranking(ranking, &self.model, query, params)
    }

    /// A self-driving session pulling chunks from `source`.
    pub fn session_with_source(
        &self,
        query: &Vector,
        params: &SearchParams,
        source: Arc<dyn ChunkSource>,
    ) -> SearchSession {
        SearchSession::with_source(&self.store, &self.model, query, params, source)
    }

    /// Executes one query serially over a private prefetching source — the
    /// reference execution that interleaved schedules are bit-compared
    /// against.
    pub fn search(&self, query: &Vector, params: &SearchParams) -> Result<SearchResult> {
        let source: Arc<dyn ChunkSource> =
            Arc::new(PrefetchSource::new(&self.store, params.prefetch_depth));
        let mut session = self.session_with_source(query, params, source);
        session.run_to_stop()?;
        Ok(session.into_result())
    }

    /// A [`ResidentSource`] over this snapshot's store pinning at most
    /// `budget_bytes` of decoded chunks.
    pub fn resident_source(&self, budget_bytes: u64) -> ResidentSource {
        ResidentSource::new(&self.store, budget_bytes)
    }
}

impl ChunkIndex {
    /// The immutable serving view of this index: an O(1)-`Clone` pairing
    /// of store handle and cost model that any number of concurrent
    /// consumers may share.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::new(self.store().clone(), *self.model())
    }
}

/// An immutable view of one *epoch* of a mutable index: a base
/// [`Snapshot`] (one compaction generation's write-once chunk files) plus
/// the folded prefix of the delta op log that was pinned when the epoch
/// was taken.
///
/// Every session opened through an `EpochSnapshot` sees exactly this
/// epoch — inserts folded into the delta are offered up front, base rows
/// the delta tombstones are filtered from every scan — no matter what
/// writers append or the compactor folds afterwards. Like [`Snapshot`] it
/// is `Clone` in O(1): the base store handle and the folded delta are both
/// `Arc`-backed, so two clones search bit-identically.
#[derive(Clone, Debug)]
pub struct EpochSnapshot {
    base: Snapshot,
    generation: u64,
    epoch: u64,
    delta: Arc<FoldedDelta>,
}

impl EpochSnapshot {
    /// Pins `base` (compaction generation `generation`) together with the
    /// folded delta prefix that defines epoch `epoch`.
    pub fn new(base: Snapshot, generation: u64, epoch: u64, delta: Arc<FoldedDelta>) -> Self {
        EpochSnapshot {
            base,
            generation,
            epoch,
            delta,
        }
    }

    /// Epoch zero of a never-mutated index: generation 0, an empty delta.
    /// Sessions through it are bit-identical to sessions on `base` itself
    /// — the read-compat contract for v2/v3 stores opened through the
    /// epoch layer.
    pub fn unchanged(base: Snapshot) -> Self {
        EpochSnapshot::new(base, 0, 0, Arc::new(FoldedDelta::default()))
    }

    /// The base generation's immutable view.
    pub fn base(&self) -> &Snapshot {
        &self.base
    }

    /// The compaction generation this epoch's chunk files belong to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The epoch counter: total delta ops (folded + pinned) applied to the
    /// index when this snapshot was taken.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The folded delta pinned by this epoch.
    pub fn delta(&self) -> &Arc<FoldedDelta> {
        &self.delta
    }

    /// Ranks the base generation's chunks for `query`.
    pub fn rank(&self, query: &Vector) -> ChunkRanking {
        self.base.rank(query)
    }

    /// A detached session pinned to this epoch: the delta is applied
    /// before the first step, so the caller only feeds base chunks.
    pub fn session(&self, query: &Vector, params: &SearchParams) -> SearchSession {
        let mut session = self.base.session(query, params);
        session.apply_delta(&self.delta);
        session
    }

    /// [`session`](Self::session) over a pre-computed ranking.
    pub fn session_from_ranking(
        &self,
        ranking: ChunkRanking,
        query: &Vector,
        params: &SearchParams,
    ) -> SearchSession {
        let mut session = self.base.session_from_ranking(ranking, query, params);
        session.apply_delta(&self.delta);
        session
    }

    /// A self-driving epoch-pinned session pulling base chunks from
    /// `source`.
    pub fn session_with_source(
        &self,
        query: &Vector,
        params: &SearchParams,
        source: Arc<dyn ChunkSource>,
    ) -> SearchSession {
        let mut session = self.base.session_with_source(query, params, source);
        session.apply_delta(&self.delta);
        session
    }

    /// Executes one query serially over a private prefetching source — the
    /// solo reference run that concurrent serving schedules under mutation
    /// are bit-compared against.
    pub fn search(&self, query: &Vector, params: &SearchParams) -> Result<SearchResult> {
        let source: Arc<dyn ChunkSource> = Arc::new(PrefetchSource::new(
            self.base.store(),
            params.prefetch_depth,
        ));
        let mut session = self.session_with_source(query, params, source);
        session.run_to_stop()?;
        Ok(session.into_result())
    }

    /// A [`ResidentSource`] over this epoch's base store.
    pub fn resident_source(&self, budget_bytes: u64) -> ResidentSource {
        self.base.resident_source(budget_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunkers::{ChunkFormer, SrTreeChunker};
    use eff2_descriptor::{Descriptor, DescriptorSet};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eff2_snapshot_{tag}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn sample_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| {
                let mut v = Vector::splat((i % 7) as f32 * 4.0);
                v[2] += i as f32 * 0.05;
                Descriptor::new(i as u32, v)
            })
            .collect()
    }

    fn build_index(tag: &str, n: usize) -> ChunkIndex {
        let set = sample_set(n);
        let formation = SrTreeChunker { leaf_size: 25 }.form(&set);
        let store =
            ChunkStore::create(&tmp_dir(tag), "s", &set, &formation.chunks, 512).expect("create");
        ChunkIndex::from_store(store, DiskModel::ata_2005())
    }

    #[test]
    fn clones_search_bit_identically() {
        let index = build_index("clones", 400);
        let snap = index.snapshot();
        let twin = snap.clone();
        let q = Vector::splat(9.0);
        let params = SearchParams::exact(6);
        let a = snap.search(&q, &params).expect("a");
        let b = twin.search(&q, &params).expect("b");
        let c = index.search(&q, &params).expect("c");
        for other in [&b, &c] {
            assert_eq!(a.neighbors.len(), other.neighbors.len());
            for (x, y) in a.neighbors.iter().zip(other.neighbors.iter()) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.dist.to_bits(), y.dist.to_bits());
            }
            assert_eq!(
                a.log.total_virtual.as_secs().to_bits(),
                other.log.total_virtual.as_secs().to_bits()
            );
        }
    }

    #[test]
    fn detached_session_from_snapshot_can_be_fed() {
        let index = build_index("feed", 200);
        let snap = index.snapshot();
        let q = Vector::splat(3.0);
        let params = SearchParams::exact(4);
        let mut ranking = ChunkRanking::default();
        snap.rank_into(&mut ranking, &q);
        let mut session = snap.session_from_ranking(ranking, &q, &params);
        let mut reader = snap.store().reader().expect("reader");
        while let Some(id) = session.next_wanted() {
            if session.stop_satisfied() {
                break;
            }
            let mut payload = eff2_storage::chunkfile::ChunkPayload::default();
            let bytes_read = reader.read_chunk(id, &mut payload).expect("read");
            session
                .step_with(&eff2_storage::source::SourcedChunk {
                    id,
                    payload: Arc::new(payload),
                    bytes_read,
                })
                .expect("step_with");
        }
        let fed = session.into_result();
        let want = snap.search(&q, &params).expect("reference");
        assert_eq!(
            fed.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
            want.neighbors.iter().map(|n| n.id).collect::<Vec<_>>()
        );
        assert_eq!(
            fed.log.total_virtual.as_secs().to_bits(),
            want.log.total_virtual.as_secs().to_bits()
        );
    }

    #[test]
    fn epoch_zero_is_bit_identical_to_base_snapshot() {
        let index = build_index("epoch_zero", 300);
        let snap = index.snapshot();
        let epoch = EpochSnapshot::unchanged(snap.clone());
        let q = Vector::splat(11.0);
        let params = SearchParams::exact(5);
        let base = snap.search(&q, &params).expect("base");
        let pinned = epoch.search(&q, &params).expect("pinned");
        assert_eq!(base.neighbors.len(), pinned.neighbors.len());
        for (x, y) in base.neighbors.iter().zip(pinned.neighbors.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.dist.to_bits(), y.dist.to_bits());
        }
        assert_eq!(
            base.log.total_virtual.as_secs().to_bits(),
            pinned.log.total_virtual.as_secs().to_bits()
        );
        assert_eq!(
            base.log.bytes_read, pinned.log.bytes_read,
            "empty delta must not charge any extra I/O"
        );
    }

    #[test]
    fn epoch_snapshot_serves_inserts_and_hides_tombstones() {
        use eff2_storage::epoch::{DeltaOp, FoldedDelta};

        let index = build_index("epoch_mut", 300);
        let snap = index.snapshot();
        let q = Vector::splat(0.0);
        let params = SearchParams::exact(3);
        let base = snap.search(&q, &params).expect("base");
        let best = base.neighbors[0].id;

        // Delete the base winner and insert a new exact-match row.
        let delta = Arc::new(FoldedDelta::from_ops(&[
            DeltaOp::Delete { id: best },
            DeltaOp::Insert {
                id: 9_000,
                vector: q,
            },
        ]));
        let epoch = EpochSnapshot::new(snap.clone(), 0, 2, Arc::clone(&delta));
        assert_eq!(epoch.epoch(), 2);
        assert_eq!(epoch.generation(), 0);
        let got = epoch.search(&q, &params).expect("pinned");
        let ids: Vec<u32> = got.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(ids[0], 9_000, "delta insert at distance zero must win");
        assert!(
            !ids.contains(&best),
            "tombstoned base row {best} must never be served"
        );
        // Clones of the pinned epoch stay bit-identical.
        let twin = epoch.clone().search(&q, &params).expect("twin");
        for (x, y) in got.neighbors.iter().zip(twin.neighbors.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.dist.to_bits(), y.dist.to_bits());
        }
        assert_eq!(
            got.log.total_virtual.as_secs().to_bits(),
            twin.log.total_virtual.as_secs().to_bits()
        );
    }
}
