//! An immutable, cheaply shareable view of a chunk index.
//!
//! A [`Snapshot`] is what a *serving* layer holds: the pairing of a
//! [`ChunkStore`] (itself an `Arc`-backed handle over the mapped index
//! file) with the [`DiskModel`] its timings are reported under, `Clone` in
//! O(1) and safe to hand to any number of concurrent schedulers, workers
//! or sessions. Nothing behind a snapshot ever mutates — the chunk-index
//! files are write-once — so two clones always rank, bound and search
//! bit-identically.
//!
//! [`ChunkIndex`] remains the build/open entry point;
//! [`ChunkIndex::snapshot`] yields the serving view.

use crate::index::ChunkIndex;
use crate::search::{SearchParams, SearchResult};
use crate::session::{ChunkRanking, SearchSession};
use eff2_descriptor::Vector;
use eff2_storage::diskmodel::DiskModel;
use eff2_storage::source::{ChunkSource, PrefetchSource, ResidentSource};
use eff2_storage::{ChunkStore, Result};
use std::sync::Arc;

/// An immutable view of one chunk index plus its cost model.
///
/// See the [module docs](self) for the sharing contract.
#[derive(Clone, Debug)]
pub struct Snapshot {
    store: ChunkStore,
    model: DiskModel,
}

impl Snapshot {
    /// Pairs an open store with a cost model.
    pub fn new(store: ChunkStore, model: DiskModel) -> Snapshot {
        Snapshot { store, model }
    }

    /// The underlying store.
    pub fn store(&self) -> &ChunkStore {
        &self.store
    }

    /// The cost model.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Number of chunks in the index.
    pub fn n_chunks(&self) -> usize {
        self.store.n_chunks()
    }

    /// Ranks all chunks for `query` (allocating fresh buffers).
    pub fn rank(&self, query: &Vector) -> ChunkRanking {
        ChunkRanking::rank(&self.store, &self.model, query)
    }

    /// Ranks all chunks for `query` into `ranking`, reusing its buffers.
    pub fn rank_into(&self, ranking: &mut ChunkRanking, query: &Vector) {
        ranking.rank_into(&self.store, &self.model, query);
    }

    /// A detached session for `query`: the caller feeds chunks through
    /// [`SearchSession::step_with`] — the scheduler's mode.
    pub fn session(&self, query: &Vector, params: &SearchParams) -> SearchSession {
        SearchSession::detached(&self.store, &self.model, query, params)
    }

    /// [`session`](Self::session) over a pre-computed ranking (see
    /// [`rank_into`](Self::rank_into) for buffer reuse).
    pub fn session_from_ranking(
        &self,
        ranking: ChunkRanking,
        query: &Vector,
        params: &SearchParams,
    ) -> SearchSession {
        SearchSession::detached_from_ranking(ranking, &self.model, query, params)
    }

    /// A self-driving session pulling chunks from `source`.
    pub fn session_with_source(
        &self,
        query: &Vector,
        params: &SearchParams,
        source: Arc<dyn ChunkSource>,
    ) -> SearchSession {
        SearchSession::with_source(&self.store, &self.model, query, params, source)
    }

    /// Executes one query serially over a private prefetching source — the
    /// reference execution that interleaved schedules are bit-compared
    /// against.
    pub fn search(&self, query: &Vector, params: &SearchParams) -> Result<SearchResult> {
        let source: Arc<dyn ChunkSource> =
            Arc::new(PrefetchSource::new(&self.store, params.prefetch_depth));
        let mut session = self.session_with_source(query, params, source);
        session.run_to_stop()?;
        Ok(session.into_result())
    }

    /// A [`ResidentSource`] over this snapshot's store pinning at most
    /// `budget_bytes` of decoded chunks.
    pub fn resident_source(&self, budget_bytes: u64) -> ResidentSource {
        ResidentSource::new(&self.store, budget_bytes)
    }
}

impl ChunkIndex {
    /// The immutable serving view of this index: an O(1)-`Clone` pairing
    /// of store handle and cost model that any number of concurrent
    /// consumers may share.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::new(self.store().clone(), *self.model())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunkers::{ChunkFormer, SrTreeChunker};
    use eff2_descriptor::{Descriptor, DescriptorSet};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eff2_snapshot_{tag}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn sample_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| {
                let mut v = Vector::splat((i % 7) as f32 * 4.0);
                v[2] += i as f32 * 0.05;
                Descriptor::new(i as u32, v)
            })
            .collect()
    }

    fn build_index(tag: &str, n: usize) -> ChunkIndex {
        let set = sample_set(n);
        let formation = SrTreeChunker { leaf_size: 25 }.form(&set);
        let store =
            ChunkStore::create(&tmp_dir(tag), "s", &set, &formation.chunks, 512).expect("create");
        ChunkIndex::from_store(store, DiskModel::ata_2005())
    }

    #[test]
    fn clones_search_bit_identically() {
        let index = build_index("clones", 400);
        let snap = index.snapshot();
        let twin = snap.clone();
        let q = Vector::splat(9.0);
        let params = SearchParams::exact(6);
        let a = snap.search(&q, &params).expect("a");
        let b = twin.search(&q, &params).expect("b");
        let c = index.search(&q, &params).expect("c");
        for other in [&b, &c] {
            assert_eq!(a.neighbors.len(), other.neighbors.len());
            for (x, y) in a.neighbors.iter().zip(other.neighbors.iter()) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.dist.to_bits(), y.dist.to_bits());
            }
            assert_eq!(
                a.log.total_virtual.as_secs().to_bits(),
                other.log.total_virtual.as_secs().to_bits()
            );
        }
    }

    #[test]
    fn detached_session_from_snapshot_can_be_fed() {
        let index = build_index("feed", 200);
        let snap = index.snapshot();
        let q = Vector::splat(3.0);
        let params = SearchParams::exact(4);
        let mut ranking = ChunkRanking::default();
        snap.rank_into(&mut ranking, &q);
        let mut session = snap.session_from_ranking(ranking, &q, &params);
        let mut reader = snap.store().reader().expect("reader");
        while let Some(id) = session.next_wanted() {
            if session.stop_satisfied() {
                break;
            }
            let mut payload = eff2_storage::chunkfile::ChunkPayload::default();
            let bytes_read = reader.read_chunk(id, &mut payload).expect("read");
            session
                .step_with(&eff2_storage::source::SourcedChunk {
                    id,
                    payload: Arc::new(payload),
                    bytes_read,
                })
                .expect("step_with");
        }
        let fed = session.into_result();
        let want = snap.search(&q, &params).expect("reference");
        assert_eq!(
            fed.neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
            want.neighbors.iter().map(|n| n.id).collect::<Vec<_>>()
        );
        assert_eq!(
            fed.log.total_virtual.as_secs().to_bits(),
            want.log.total_virtual.as_secs().to_bits()
        );
    }
}
