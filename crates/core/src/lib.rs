#![warn(missing_docs)]

//! # eff2-core
//!
//! The primary contribution surface of the eff2 reproduction: approximate
//! nearest-neighbour search over **chunk indexes**, in the
//! clustering-for-indexing paradigm the paper studies.
//!
//! The search (§4.3) works in three steps:
//!
//! 1. **rank** all chunks by the distance from the query descriptor to
//!    their centroids (the index file read — ≈50 ms on the paper's
//!    hardware);
//! 2. **scan** chunks in ranked order, fetching each chunk's descriptors
//!    and updating the current k-nearest-neighbour set — I/O overlapped
//!    with CPU through a prefetching pipeline;
//! 3. **stop** according to a [`StopRule`]: after a fixed number of chunks,
//!    after a time threshold, or *to completion* — when `k` neighbours are
//!    known and no remaining chunk's lower bound
//!    `d(q, centroid) − radius` can beat the current kth distance (this is
//!    why the index stores radii).
//!
//! What distinguishes chunk indexes is **how the chunks were formed**; the
//! [`chunkers`] module provides the paper's two contestants — uniform-size
//! SR-tree leaves (§2) and quality-first BAG clusters (§3) — plus the
//! round-robin and random baselines from the paper's introduction and the
//! *hybrid* size-bounded refinement its conclusion calls for.
//!
//! Every search logs its per-chunk intermediate results ([`SearchLog`]),
//! which is what the paper's quality-vs-time figures are computed from.

pub mod adc;
pub mod chunkers;
pub mod coarse;
pub mod image;
pub mod index;
pub mod merge;
pub mod neighbors;
pub mod scan;
pub mod search;
pub mod session;
pub mod snapshot;

pub use adc::{search_quantized, search_quantized_with, search_two_level};
pub use chunkers::{
    BagChunker, ChunkFormation, ChunkFormer, FormationCost, HybridChunker, RandomChunker,
    RoundRobinChunker, SrTreeChunker,
};
pub use coarse::CoarseQuantizer;
pub use image::{
    solo_image_search, ImageAggregator, ImageOutcome, ImageStopRule, ImageStopTracker, ImageVote,
    ImageVoteAccumulator, ImageVoteEvent,
};
pub use index::{BuiltIndex, ChunkIndex};
pub use merge::{LegOutcome, ScatterGather};
pub use neighbors::{Neighbor, NeighborSet};
pub use scan::{scan_knn, scan_store_knn};
pub use search::{
    search_batch, search_batch_threads, search_batch_with_source, search_with_source, ChunkEvent,
    Degradation, ResultFidelity, SearchLog, SearchParams, SearchResult, StopRule,
};
pub use session::{evaluate_stop_rules, rule_fires, ChunkRanking, SearchSession, SkipPolicy};
pub use snapshot::{EpochSnapshot, Snapshot};
