//! The resumable engine must be observationally identical to the search it
//! replaced: driving a [`SearchSession`] step by step — through any
//! [`ChunkSource`] — yields `ChunkEvent` traces and neighbour sets
//! bit-identical to one-shot `search()`, under every stop rule and
//! chunker; `evaluate_stop_rules()` answers every rule from ONE scan with
//! results identical to the individual per-rule searches; and a store
//! whose chunk file vanishes or truncates between session construction and
//! the first `step()` surfaces a clean `Err`, never a panic.

use eff2_bag::BagConfig;
use eff2_core::chunkers::{
    BagChunker, ChunkFormer, HybridChunker, RandomChunker, RoundRobinChunker, SrTreeChunker,
};
use eff2_core::search::search;
use eff2_core::session::SearchSession;
use eff2_core::{SearchParams, SearchResult, StopRule};
use eff2_descriptor::{Descriptor, DescriptorSet, Vector};
use eff2_storage::diskmodel::{DiskModel, VirtualDuration};
use eff2_storage::source::{
    ChunkSource, ChunkStream, FileSource, PrefetchSource, ResidentSource, SourcedChunk,
};
use eff2_storage::{ChunkStore, Result as StorageResult};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let unique = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "eff2_session_eq_{tag}_{}_{unique}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn lumpy_set(n: usize) -> DescriptorSet {
    (0..n)
        .map(|i| {
            let blob = (i % 5) as f32 * 20.0;
            let mut v = Vector::splat(blob);
            v[0] += ((i * 31) % 23) as f32 * 0.3;
            v[3] -= ((i * 17) % 19) as f32 * 0.2;
            Descriptor::new(i as u32, v)
        })
        .collect()
}

fn build_store(tag: &str, set: &DescriptorSet, former: &dyn ChunkFormer) -> ChunkStore {
    let formation = former.form(set);
    ChunkStore::create(&tmp_dir(tag), "ix", set, &formation.chunks, 512).expect("create")
}

fn vd_bits(t: VirtualDuration) -> u64 {
    t.as_secs().to_bits()
}

/// Bit-identity over everything the paper's figures are computed from
/// (wall-clock time is the one legitimately nondeterministic field).
fn assert_bit_identical(want: &SearchResult, got: &SearchResult, tag: &str) {
    assert_eq!(want.neighbors.len(), got.neighbors.len(), "{tag}: k");
    for (w, g) in want.neighbors.iter().zip(got.neighbors.iter()) {
        assert_eq!(w.id, g.id, "{tag}: neighbor id");
        assert_eq!(w.dist.to_bits(), g.dist.to_bits(), "{tag}: neighbor dist");
    }
    let (wl, gl) = (&want.log, &got.log);
    assert_eq!(
        vd_bits(wl.index_read_time),
        vd_bits(gl.index_read_time),
        "{tag}: index time"
    );
    assert_eq!(wl.chunks_read, gl.chunks_read, "{tag}: chunks_read");
    assert_eq!(
        wl.descriptors_scanned, gl.descriptors_scanned,
        "{tag}: scanned"
    );
    assert_eq!(wl.bytes_read, gl.bytes_read, "{tag}: bytes");
    assert_eq!(
        vd_bits(wl.total_virtual),
        vd_bits(gl.total_virtual),
        "{tag}: total virtual"
    );
    assert_eq!(wl.completed, gl.completed, "{tag}: completed");
    assert_eq!(wl.events.len(), gl.events.len(), "{tag}: event count");
    for (w, g) in wl.events.iter().zip(gl.events.iter()) {
        assert_eq!(w.rank, g.rank, "{tag}: rank");
        assert_eq!(w.chunk_id, g.chunk_id, "{tag}: chunk_id");
        assert_eq!(w.count, g.count, "{tag}: count");
        assert_eq!(w.bytes_read, g.bytes_read, "{tag}: event bytes");
        assert_eq!(
            vd_bits(w.completed_at),
            vd_bits(g.completed_at),
            "{tag}: completed_at"
        );
        assert_eq!(w.kth_dist.to_bits(), g.kth_dist.to_bits(), "{tag}: kth");
        assert_eq!(w.topk_ids, g.topk_ids, "{tag}: topk snapshot");
    }
}

/// Drives a session one explicit `step()` at a time (checking the stop
/// predicate between steps, exactly what `run_to_stop` does internally)
/// and finalises it.
fn drive_stepwise(mut session: SearchSession) -> SearchResult {
    let mut steps = 0usize;
    while !session.stop_satisfied() {
        match session.step().expect("step") {
            Some(event) => assert_eq!(event.rank, steps, "events arrive in rank order"),
            None => break,
        }
        steps += 1;
    }
    assert_eq!(session.chunks_read(), steps);
    session.into_result()
}

// ---------------------------------------------------------------------------
// Property: stepwise session ≡ one-shot search, every rule × chunker ×
// source.
// ---------------------------------------------------------------------------

fn arb_former() -> impl Strategy<Value = Box<dyn ChunkFormer>> {
    prop_oneof![
        (8usize..60)
            .prop_map(|leaf| Box::new(SrTreeChunker { leaf_size: leaf }) as Box<dyn ChunkFormer>),
        (1usize..16)
            .prop_map(|n| Box::new(RoundRobinChunker { n_chunks: n }) as Box<dyn ChunkFormer>),
        (1usize..16, 0u64..4).prop_map(|(n, seed)| {
            Box::new(RandomChunker { n_chunks: n, seed }) as Box<dyn ChunkFormer>
        }),
        (10usize..50).prop_map(|size| {
            Box::new(HybridChunker {
                chunk_size: size,
                sweeps: 1,
                neighbor_chunks: 2,
                min_fill: 0.5,
                max_fill: 1.5,
            }) as Box<dyn ChunkFormer>
        }),
    ]
}

fn arb_stop() -> impl Strategy<Value = StopRule> {
    prop_oneof![
        (0usize..10).prop_map(StopRule::Chunks),
        (0.0f64..0.2).prop_map(|s| StopRule::VirtualTime(VirtualDuration::from_secs(s))),
        Just(StopRule::ToCompletion),
        (0.0f32..1.5).prop_map(StopRule::ToCompletionEps),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stepwise_session_bit_identical_to_one_shot(
        former in arb_former(),
        stop in arb_stop(),
        n in 40usize..240,
        k in 0usize..12,
        qsel in 0usize..4,
    ) {
        let set = lumpy_set(n);
        let store = build_store("prop", &set, former.as_ref());
        let model = DiskModel::ata_2005();
        let query = match qsel {
            0 => Vector::ZERO,
            1 => Vector::splat(9.5),
            2 => set.vector_owned(n / 2),
            _ => set.vector_owned(n - 1),
        };
        let params = SearchParams { k, stop, prefetch_depth: 2, log_snapshots: true };
        let tag = format!("{}/{stop:?}/k{k}", former.name());

        let want = search(&store, &model, &query, &params).expect("one-shot");

        // Stepwise through the default prefetching source.
        let got = drive_stepwise(SearchSession::open(&store, &model, &query, &params));
        assert_bit_identical(&want, &got, &format!("{tag}/prefetch"));

        // Stepwise through a plain file source.
        let file = drive_stepwise(SearchSession::with_source(
            &store, &model, &query, &params, Arc::new(FileSource::new(&store)),
        ));
        assert_bit_identical(&want, &file, &format!("{tag}/file"));

        // Twice through a shared resident cache: the second run is served
        // from memory and must still be bit-identical.
        let resident = Arc::new(ResidentSource::new(&store, u64::MAX));
        for pass in 0..2 {
            let cached = drive_stepwise(SearchSession::with_source(
                &store, &model, &query, &params, Arc::clone(&resident) as Arc<_>,
            ));
            assert_bit_identical(&want, &cached, &format!("{tag}/resident{pass}"));
        }
    }
}

/// BAG's uneven chunks (too slow to form inside the property loop) get a
/// deterministic pass over every stop rule.
#[test]
fn bag_chunker_session_equivalence() {
    let set = lumpy_set(150);
    let former = BagChunker {
        config: BagConfig {
            mpi: 5.0,
            ..BagConfig::default()
        },
        target_clusters: 6,
    };
    let store = build_store("bag", &set, &former);
    let model = DiskModel::ata_2005();
    let query = set.vector_owned(75);
    for stop in [
        StopRule::Chunks(2),
        StopRule::VirtualTime(VirtualDuration::from_ms(40.0)),
        StopRule::ToCompletion,
        StopRule::ToCompletionEps(0.5),
    ] {
        let params = SearchParams {
            k: 8,
            stop,
            prefetch_depth: 2,
            log_snapshots: true,
        };
        let want = search(&store, &model, &query, &params).expect("one-shot");
        let got = drive_stepwise(SearchSession::open(&store, &model, &query, &params));
        assert_bit_identical(&want, &got, &format!("bag/{stop:?}"));
    }
}

// ---------------------------------------------------------------------------
// evaluate_stop_rules: identical to per-rule searches, one read pass.
// ---------------------------------------------------------------------------

/// Wraps a source and counts every chunk its streams deliver.
struct CountingSource {
    inner: Box<dyn ChunkSource>,
    delivered: Arc<AtomicUsize>,
}

struct CountingStream {
    inner: Box<dyn ChunkStream>,
    delivered: Arc<AtomicUsize>,
}

impl ChunkSource for CountingSource {
    fn open_stream(&self, order: Vec<usize>) -> StorageResult<Box<dyn ChunkStream>> {
        Ok(Box::new(CountingStream {
            inner: self.inner.open_stream(order)?,
            delivered: Arc::clone(&self.delivered),
        }))
    }
}

impl ChunkStream for CountingStream {
    fn next_chunk(&mut self) -> Option<StorageResult<SourcedChunk>> {
        let item = self.inner.next_chunk();
        if matches!(item, Some(Ok(_))) {
            self.delivered.fetch_add(1, Ordering::Relaxed);
        }
        item
    }
}

#[test]
fn evaluate_stop_rules_matches_per_rule_searches_in_one_pass() {
    let set = lumpy_set(500);
    let model = DiskModel::ata_2005();
    let rules = [
        StopRule::Chunks(0),
        StopRule::Chunks(1),
        StopRule::Chunks(4),
        StopRule::Chunks(999),
        StopRule::VirtualTime(VirtualDuration::from_ms(20.0)),
        StopRule::VirtualTime(VirtualDuration::from_secs(0.08)),
        StopRule::VirtualTime(VirtualDuration::from_secs(1e6)),
        StopRule::ToCompletion,
        StopRule::ToCompletionEps(0.0),
        StopRule::ToCompletionEps(0.5),
        StopRule::ToCompletionEps(1.0),
    ];
    for (ftag, former) in [
        ("sr", &SrTreeChunker { leaf_size: 40 } as &dyn ChunkFormer),
        (
            "rr",
            &RoundRobinChunker { n_chunks: 11 } as &dyn ChunkFormer,
        ),
    ] {
        let store = build_store(&format!("rules_{ftag}"), &set, former);
        for (qtag, query) in [
            ("inset", set.vector_owned(123)),
            ("offset", Vector::splat(9.5)),
        ] {
            let params = SearchParams {
                k: 10,
                stop: StopRule::ToCompletion, // ignored by evaluate_rules
                prefetch_depth: 2,
                log_snapshots: true,
            };

            // The expensive way: one full search per rule.
            let mut individual = Vec::new();
            let mut individual_reads = 0usize;
            for &stop in &rules {
                let got = search(&store, &model, &query, &SearchParams { stop, ..params })
                    .expect("per-rule search");
                individual_reads += got.log.chunks_read;
                individual.push(got);
            }

            // The session way: every rule from one counted scan.
            let delivered = Arc::new(AtomicUsize::new(0));
            let source = Arc::new(CountingSource {
                inner: Box::new(FileSource::new(&store)),
                delivered: Arc::clone(&delivered),
            });
            let all = SearchSession::with_source(&store, &model, &query, &params, source)
                .evaluate_rules(&rules)
                .expect("evaluate_rules");

            assert_eq!(all.len(), rules.len());
            for ((want, got), &rule) in individual.iter().zip(all.iter()).zip(rules.iter()) {
                assert_bit_identical(want, got, &format!("{ftag}/{qtag}/{rule:?}"));
            }

            // One read pass: the collection is never re-read per rule.
            let reads = delivered.load(Ordering::Relaxed);
            let deepest = individual
                .iter()
                .map(|r| r.log.chunks_read)
                .max()
                .expect("rules");
            assert_eq!(
                reads, deepest,
                "{ftag}/{qtag}: must read exactly as deep as the longest rule"
            );
            assert!(
                reads <= store.n_chunks(),
                "{ftag}/{qtag}: one pass over {} chunks, read {reads}",
                store.n_chunks()
            );
            assert!(
                individual_reads > reads,
                "{ftag}/{qtag}: per-rule searches re-read ({individual_reads} vs {reads})"
            );
        }
    }
}

#[test]
fn evaluate_stop_rules_with_k_zero_reads_nothing() {
    let set = lumpy_set(100);
    let store = build_store("rules_k0", &set, &SrTreeChunker { leaf_size: 25 });
    let model = DiskModel::ata_2005();
    let params = SearchParams {
        k: 0,
        stop: StopRule::ToCompletion,
        prefetch_depth: 1,
        log_snapshots: false,
    };
    let rules = [StopRule::Chunks(3), StopRule::ToCompletion];
    let all = eff2_core::evaluate_stop_rules(&store, &model, &Vector::ZERO, &params, &rules)
        .expect("evaluate");
    for got in &all {
        assert!(got.neighbors.is_empty());
        assert_eq!(got.log.chunks_read, 0);
        assert!(got.log.completed, "empty answers are trivially exact");
    }
}

// ---------------------------------------------------------------------------
// Failure injection: files vanishing between open and the first step.
// ---------------------------------------------------------------------------

fn sources_for(store: &ChunkStore) -> Vec<(&'static str, Arc<dyn ChunkSource>)> {
    vec![
        ("file", Arc::new(FileSource::new(store))),
        ("prefetch", Arc::new(PrefetchSource::new(store, 2))),
        ("resident", Arc::new(ResidentSource::new(store, u64::MAX))),
    ]
}

#[test]
fn chunk_file_deleted_between_open_and_first_step() {
    let set = lumpy_set(200);
    let model = DiskModel::ata_2005();
    let params = SearchParams::exact(5);
    let query = set.vector_owned(7);
    for i in 0..3 {
        // Fresh store per source: the file is destroyed each round.
        let store = build_store("deleted", &set, &SrTreeChunker { leaf_size: 20 });
        let (tag, source) = sources_for(&store).swap_remove(i);
        let mut session = SearchSession::with_source(&store, &model, &query, &params, source);
        std::fs::remove_file(store.chunk_path()).expect("delete chunk file");
        let got = session.step();
        assert!(
            got.is_err(),
            "{tag}: deleted chunk file must be a clean Err"
        );
    }
}

#[test]
fn chunk_file_truncated_between_open_and_first_step() {
    let set = lumpy_set(300);
    let model = DiskModel::ata_2005();
    let params = SearchParams::exact(5);
    let query = Vector::splat(40.0); // rank order reaches far chunks
    for i in 0..3 {
        let store = build_store("truncated", &set, &SrTreeChunker { leaf_size: 20 });
        let (tag, source) = sources_for(&store).swap_remove(i);
        let mut session = SearchSession::with_source(&store, &model, &query, &params, source);
        let data = std::fs::read(store.chunk_path()).expect("read file");
        std::fs::write(store.chunk_path(), &data[..data.len() / 2]).expect("truncate");
        // Some prefix of chunks may still be readable; the scan must end
        // in a clean Err, never a panic and never silent success.
        let mut saw_err = false;
        loop {
            match session.step() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(_) => {
                    saw_err = true;
                    break;
                }
            }
        }
        assert!(saw_err, "{tag}: truncated chunk file must surface an Err");
    }
}
