//! `search_batch` must be observationally identical to running `search`
//! once per query: parallelism stops at the query boundary, so every
//! per-query `ChunkEvent` trace — rank, chunk id, count, bytes read,
//! virtual completion time, kth distance, top-k snapshot — is required to
//! be *bit-identical* to the sequential run, under every stop rule and
//! regardless of worker-thread count.

use eff2_core::chunkers::{ChunkFormer, RoundRobinChunker, SrTreeChunker};
use eff2_core::search::search;
use eff2_core::{search_batch, search_batch_threads, SearchParams, SearchResult, StopRule};
use eff2_descriptor::{Descriptor, DescriptorSet, Vector};
use eff2_storage::diskmodel::{DiskModel, VirtualDuration};
use eff2_storage::ChunkStore;

fn lumpy_set(n: usize) -> DescriptorSet {
    (0..n)
        .map(|i| {
            let blob = (i % 5) as f32 * 20.0;
            let mut v = Vector::splat(blob);
            v[0] += ((i * 31) % 23) as f32 * 0.3;
            v[3] -= ((i * 17) % 19) as f32 * 0.2;
            Descriptor::new(i as u32, v)
        })
        .collect()
}

fn build_store(tag: &str, set: &DescriptorSet, former: &dyn ChunkFormer) -> ChunkStore {
    let dir = std::env::temp_dir().join(format!("eff2_batch_det_{tag}"));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let formation = former.form(set);
    ChunkStore::create(&dir, "ix", set, &formation.chunks, 512).expect("create")
}

fn queries(set: &DescriptorSet) -> Vec<Vector> {
    let mut qs: Vec<Vector> = [0usize, 17, 123, 250, 444]
        .iter()
        .filter(|&&i| i < set.len())
        .map(|&i| set.vector_owned(i))
        .collect();
    qs.push(Vector::splat(9.5)); // off-dataset
    qs.push(Vector::ZERO);
    qs
}

fn assert_bit_identical(seq: &SearchResult, par: &SearchResult, tag: &str) {
    // Neighbours: same ids, same distances to the bit.
    assert_eq!(seq.neighbors.len(), par.neighbors.len(), "{tag}: k");
    for (s, p) in seq.neighbors.iter().zip(par.neighbors.iter()) {
        assert_eq!(s.id, p.id, "{tag}: neighbor id");
        assert_eq!(s.dist.to_bits(), p.dist.to_bits(), "{tag}: neighbor dist");
    }
    // Log scalars.
    let (sl, pl) = (&seq.log, &par.log);
    assert_eq!(
        vd_bits(sl.index_read_time),
        vd_bits(pl.index_read_time),
        "{tag}: index time"
    );
    assert_eq!(sl.chunks_read, pl.chunks_read, "{tag}: chunks_read");
    assert_eq!(
        sl.descriptors_scanned, pl.descriptors_scanned,
        "{tag}: scanned"
    );
    assert_eq!(sl.bytes_read, pl.bytes_read, "{tag}: bytes");
    assert_eq!(
        vd_bits(sl.total_virtual),
        vd_bits(pl.total_virtual),
        "{tag}: total virtual"
    );
    assert_eq!(sl.completed, pl.completed, "{tag}: completed");
    // Full per-chunk event trace.
    assert_eq!(sl.events.len(), pl.events.len(), "{tag}: event count");
    for (s, p) in sl.events.iter().zip(pl.events.iter()) {
        assert_eq!(s.rank, p.rank, "{tag}: rank");
        assert_eq!(s.chunk_id, p.chunk_id, "{tag}: chunk_id");
        assert_eq!(s.count, p.count, "{tag}: count");
        assert_eq!(s.bytes_read, p.bytes_read, "{tag}: event bytes");
        assert_eq!(
            vd_bits(s.completed_at),
            vd_bits(p.completed_at),
            "{tag}: completed_at"
        );
        assert_eq!(
            s.kth_dist.to_bits(),
            p.kth_dist.to_bits(),
            "{tag}: kth_dist"
        );
        assert_eq!(s.topk_ids, p.topk_ids, "{tag}: topk snapshot");
    }
}

fn vd_bits(t: VirtualDuration) -> u64 {
    t.as_secs().to_bits()
}

#[test]
fn batch_traces_bit_identical_to_sequential_under_every_stop_rule() {
    let set = lumpy_set(600);
    let model = DiskModel::ata_2005();
    let qs = queries(&set);
    let budget = VirtualDuration::from_secs(0.05);
    let rules: Vec<(&str, StopRule)> = vec![
        ("completion", StopRule::ToCompletion),
        ("chunks", StopRule::Chunks(4)),
        ("vtime", StopRule::VirtualTime(budget)),
        ("eps", StopRule::ToCompletionEps(0.5)),
    ];
    for (ftag, former) in [
        ("sr", &SrTreeChunker { leaf_size: 40 } as &dyn ChunkFormer),
        (
            "rr",
            &RoundRobinChunker { n_chunks: 11 } as &dyn ChunkFormer,
        ),
    ] {
        let store = build_store(ftag, &set, former);
        for (rtag, stop) in &rules {
            let params = SearchParams {
                k: 10,
                stop: *stop,
                prefetch_depth: 2,
                log_snapshots: true,
            };
            let seq: Vec<SearchResult> = qs
                .iter()
                .map(|q| search(&store, &model, q, &params).expect("sequential"))
                .collect();
            // More workers than cores and more queries than workers: the
            // interleaving is maximally different from sequential.
            let par = search_batch_threads(&store, &model, &qs, &params, 4).expect("batch");
            assert_eq!(seq.len(), par.len());
            for (i, (s, p)) in seq.iter().zip(par.iter()).enumerate() {
                assert_bit_identical(s, p, &format!("{ftag}/{rtag}/q{i}"));
            }
        }
    }
}

#[test]
fn default_batch_matches_sequential() {
    let set = lumpy_set(400);
    let store = build_store("default", &set, &SrTreeChunker { leaf_size: 30 });
    let model = DiskModel::ata_2005();
    let qs = queries(&set);
    let params = SearchParams::exact(7);
    let seq: Vec<SearchResult> = qs
        .iter()
        .map(|q| search(&store, &model, q, &params).expect("sequential"))
        .collect();
    let par = search_batch(&store, &model, &qs, &params).expect("batch");
    for (i, (s, p)) in seq.iter().zip(par.iter()).enumerate() {
        assert_bit_identical(s, p, &format!("default/q{i}"));
    }
}

#[test]
fn batch_of_one_and_empty_batch() {
    let set = lumpy_set(100);
    let store = build_store("edge", &set, &SrTreeChunker { leaf_size: 25 });
    let model = DiskModel::ata_2005();
    let params = SearchParams::exact(5);
    let empty: Vec<Vector> = Vec::new();
    assert!(search_batch(&store, &model, &empty, &params)
        .expect("empty batch")
        .is_empty());
    let one = vec![set.vector_owned(3)];
    let got = search_batch(&store, &model, &one, &params).expect("one");
    assert_eq!(got.len(), 1);
    let want = search(&store, &model, &one[0], &params).expect("seq");
    assert_bit_identical(&want, &got[0], "single");
}
