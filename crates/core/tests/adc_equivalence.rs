//! Property: at full budget the quantized search is a lossless detour.
//!
//! When the rerank pool covers every retained candidate (`R · k ≥ n`) and
//! the scan runs to completion, the ADC-scan-plus-exact-rerank pipeline
//! over a quantized (v3) store must return **the same neighbour ids, with
//! bit-identical exact distances**, as the uncompressed flat search —
//! for either codec, with or without the two-level ranking. The same
//! property pins the two-level exact scan: only `centroid_evals` may
//! differ from the flat search, never the answer.

use eff2_core::chunkers::{ChunkFormer, SrTreeChunker};
use eff2_core::search::search;
use eff2_core::{
    search_quantized_with, search_two_level, CoarseQuantizer, SearchParams, SearchResult, StopRule,
};
use eff2_descriptor::{Codec, Descriptor, DescriptorSet, PqCodec, Sq8Codec, Vector};
use eff2_storage::diskmodel::DiskModel;
use eff2_storage::ChunkStore;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let unique = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("eff2_adc_eq_{tag}_{}_{unique}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn lumpy_set(n: usize) -> DescriptorSet {
    (0..n)
        .map(|i| {
            let blob = (i % 5) as f32 * 20.0;
            let mut v = Vector::splat(blob);
            v[0] += ((i * 31) % 23) as f32 * 0.3;
            v[3] -= ((i * 17) % 19) as f32 * 0.2;
            v[7] += ((i * 13) % 11) as f32 * 0.15;
            Descriptor::new(i as u32, v)
        })
        .collect()
}

fn assert_same_answer(want: &SearchResult, got: &SearchResult, tag: &str) {
    assert_eq!(want.neighbors.len(), got.neighbors.len(), "{tag}: k");
    for (w, g) in want.neighbors.iter().zip(got.neighbors.iter()) {
        assert_eq!(w.id, g.id, "{tag}: neighbor id");
        assert_eq!(w.dist.to_bits(), g.dist.to_bits(), "{tag}: neighbor dist");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn full_budget_quantized_search_matches_uncompressed(
        n in 40usize..140,
        leaf in 10usize..40,
        k in 1usize..10,
        qsel in 0usize..3,
    ) {
        let set = lumpy_set(n);
        let formation = SrTreeChunker { leaf_size: leaf }.form(&set);
        let dir = tmp_dir("prop");
        let raw = ChunkStore::create(&dir, "raw", &set, &formation.chunks, 512)
            .expect("raw store");
        let model = DiskModel::ata_2005();
        let query = match qsel {
            0 => Vector::ZERO,
            1 => set.vector_owned(n / 2),
            _ => Vector::splat(55.0),
        };
        let params = SearchParams { k, stop: StopRule::ToCompletion, ..SearchParams::exact(k) };
        let want = search(&raw, &model, &query, &params).expect("uncompressed search");

        // Full recovery: the rerank pool covers every descriptor.
        let full_mult = n.div_ceil(k).max(1);

        // Two-level exact scan: same answer, different ranking cost.
        let coarse_raw = CoarseQuantizer::for_store(&raw);
        let two = search_two_level(&raw, &model, &query, &params, &coarse_raw)
            .expect("two-level search");
        assert_same_answer(&want, &two, "two-level exact");

        for codec in [
            Codec::Sq8(Sq8Codec::from_set(&set)),
            Codec::Pq(PqCodec::from_set(&set)),
        ] {
            let name = eff2_descriptor::DescriptorCodec::name(&codec);
            let quant = ChunkStore::create_quantized(
                &dir, &format!("q_{name}"), &set, &formation.chunks, 512, &codec,
            ).expect("quantized store");
            let coarse = CoarseQuantizer::for_store(&quant);
            for (rtag, two_level) in [("flat", false), ("two-level", true)] {
                let got = search_quantized_with(
                    &quant, &model, &query, &params, full_mult,
                    two_level.then_some(&coarse),
                ).expect("quantized search");
                assert_same_answer(&want, &got, &format!("{name}/{rtag}"));
            }
        }
    }
}
