//! `eff2-eval` — regenerate the paper's tables and figures.
//!
//! ```text
//! eff2-eval <command> [--scale N] [--queries N] [--seed S] [--out DIR]
//!
//! commands:
//!   gen      generate (or load) the synthetic collection and print stats
//!   indexes  build the six chunk indexes (BAG + SR at three sizes)
//!   table1   Table 1  — chunk index properties
//!   fig1     Figure 1 — sizes of the 30 largest chunks
//!   exp1     Figures 2–5 and Table 2 — quality vs time, six indexes
//!   table2   Table 2 only (runs/loads exp1 curves)
//!   exp2     Figures 6–7 — the chunk-size sweep
//!   exp3     the stop-rule sweep — every rule answered from one scan
//!   exp4     the serving sweep — scheduler policies × concurrency levels
//!   exp5     the chaos sweep — quality degradation under injected chunk loss
//!   exp6     the quantization sweep — ADC scans, rerank depths, two-level ranking
//!   exp7     the sharded-fleet sweep — shards × replication × placement, with failover
//!   exp8     the live-mutation sweep — ingest rate × compaction policy × chunker
//!   exp9     the image-query sweep — vote aggregation, stop rules × windows × concurrency
//!   all      everything above, in order
//! ```
//!
//! Environment variables `EFF2_SCALE`, `EFF2_QUERIES`, `EFF2_SEED` provide
//! defaults for the corresponding flags.
// lint:allow-file(panic.index): argv and table access follows explicit length checks in the CLI parser

use eff2_eval::experiments;
use eff2_eval::{EvalResult, Lab, Scale};
use std::path::{Path, PathBuf};

fn usage() -> ! {
    eprintln!(
        "usage: eff2-eval <gen|indexes|table1|fig1|exp1|table2|exp2|exp3|exp4|exp5|exp6|exp7|exp8|exp9|all> \
         [--scale N] [--queries N] [--seed S] [--out DIR]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args[0].clone();
    let mut scale = Scale::from_env();
    let mut out = PathBuf::from("results");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale.n_descriptors = parse_next(&args, &mut i);
            }
            "--queries" => {
                scale.n_queries = parse_next(&args, &mut i);
            }
            "--seed" => {
                scale.seed = parse_next(&args, &mut i);
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
        i += 1;
    }

    if let Err(e) = run(&command, scale, &out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn parse_next<T: std::str::FromStr>(args: &[String], i: &mut usize) -> T {
    *i += 1;
    args.get(*i)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage())
}

fn run(command: &str, scale: Scale, out: &Path) -> EvalResult<()> {
    // lint:allow(det.wall_clock): CLI progress reporting only; results carry virtual times
    let started = std::time::Instant::now();
    let lab = Lab::prepare(scale, out)?;
    eprintln!(
        "[lab] collection: {} descriptors (target {}), cache {}",
        lab.set.len(),
        scale.n_descriptors,
        lab.cache_dir.display()
    );

    match command {
        "gen" => {
            let stats = eff2_descriptor::DimensionStats::compute(&lab.set);
            println!(
                "collection: {} descriptors, dim mean[0] = {:.3}, var[0] = {:.3}",
                stats.count, stats.mean[0], stats.variance[0]
            );
        }
        "indexes" => {
            for h in lab.six_indexes()? {
                println!(
                    "{:<14} chunks = {:>6}  mean size = {:>8.1}  outliers = {:>7} ({:.1}%)",
                    h.meta.label,
                    h.meta.n_chunks,
                    h.meta.mean_chunk_size,
                    h.meta.discarded,
                    100.0 * h.meta.discarded as f64 / h.meta.total_input.max(1) as f64,
                );
            }
        }
        "table1" => print!("{}", experiments::table1(&lab)?),
        "fig1" => print!("{}", experiments::fig1(&lab)?),
        "exp1" => print!("{}", experiments::exp1(&lab)?),
        "table2" => {
            let curves = experiments::exp1_curves(&lab)?;
            print!("{}", experiments::table2(&lab, &curves)?);
        }
        "exp2" => print!("{}", experiments::exp2(&lab)?),
        "exp3" => print!("{}", experiments::exp3(&lab)?),
        "exp4" => print!("{}", experiments::exp4(&lab)?),
        "exp5" => print!("{}", experiments::exp5(&lab)?),
        "exp6" => print!("{}", experiments::exp6(&lab)?),
        "exp7" => print!("{}", experiments::exp7(&lab)?),
        "exp8" => print!("{}", experiments::exp8(&lab)?),
        "exp9" => print!("{}", experiments::exp9(&lab)?),
        "all" => {
            print!("{}", experiments::table1(&lab)?);
            print!("{}", experiments::fig1(&lab)?);
            print!("{}", experiments::exp1(&lab)?);
            print!("{}", experiments::exp2(&lab)?);
            print!("{}", experiments::exp3(&lab)?);
            print!("{}", experiments::exp4(&lab)?);
            print!("{}", experiments::exp5(&lab)?);
            print!("{}", experiments::exp6(&lab)?);
            print!("{}", experiments::exp7(&lab)?);
            print!("{}", experiments::exp8(&lab)?);
            print!("{}", experiments::exp9(&lab)?);
        }
        _ => usage(),
    }
    eprintln!(
        "[done] {command} in {:.1}s",
        started.elapsed().as_secs_f64()
    );
    Ok(())
}
