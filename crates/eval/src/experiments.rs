//! The experiments: each function regenerates one or more of the paper's
//! tables/figures, prints aligned tables and writes CSV series next to
//! them.
// lint:allow-file(panic.index): result tables are sized by the experiment grid that indexes them

use crate::lab::{IndexHandle, Lab};
use crate::EvalResult;
use eff2_chaos::plan::TRANSIENT_CLEAR;
use eff2_chaos::{Fault, FaultConfig, FaultPlan, FaultSource, RetryPolicy, RetrySource};
use eff2_core::chunkers::{ChunkFormer, RoundRobinChunker, SrTreeChunker};
use eff2_core::coarse::CoarseQuantizer;
use eff2_core::image::{solo_image_search, ImageStopRule};
use eff2_core::search::{search, SearchParams, SearchResult, StopRule};
use eff2_core::session::{evaluate_stop_rules, SearchSession, SkipPolicy};
use eff2_core::snapshot::Snapshot;
use eff2_core::{search_quantized_with, search_two_level};
use eff2_descriptor::Vector;
use eff2_epoch::MutableIndex;
use eff2_metrics::{
    avg_spent_fraction, descriptors_spent_curve, fleet_quality_curve, image_precision_at,
    imbalance_factor, precision_at, GroundTruth, LatencySummary, QualityCurve, Table,
};
use eff2_serve::{
    merge_timelines, CompactionPolicy, FleetConfig, FleetScheduler, ImageConfig, ImageQuerySpec,
    ImageScheduler, LiveEvent, LiveServer, Policy, Scheduler, SchedulerConfig,
};
use eff2_shard::Placement;
use eff2_storage::diskmodel::VirtualDuration;
use eff2_storage::source::{ChunkSource, FileSource};
use eff2_workload::{
    image_of_map, image_queries, poisson_arrivals, skewed_mutation_trace, zipf_assignments,
    MutationOp,
};
use std::sync::Arc;

/// The neighbour counts Figures 6/7 trace (scaled to the configured k).
pub fn sweep_neighbor_marks(k: usize) -> Vec<usize> {
    [1usize, 10, 20, 25, 28, 30]
        .into_iter()
        .map(|m| m.min(k))
        .filter(|&m| m >= 1)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect()
}

fn fmt_f(x: f64, digits: usize) -> String {
    if x.is_nan() {
        "—".to_string()
    } else {
        format!("{x:.digits$}")
    }
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// Regenerates **Table 1**: properties of the BAG and SR-tree chunk
/// indexes (retained/discarded descriptors, chunk counts, mean sizes).
pub fn table1(lab: &Lab) -> EvalResult<String> {
    let six = lab.six_indexes()?;
    let mut t = Table::new(
        "Table 1. Properties of the BAG and SR-tree chunk indexes",
        &[
            "Chunk sizes",
            "Retained",
            "Discarded",
            "Outliers %",
            "BAG chunks",
            "BAG desc/chunk",
            "SR chunks",
            "SR desc/chunk",
        ],
    );
    for pair in six.chunks(2) {
        let (bag, sr) = (&pair[0].meta, &pair[1].meta);
        let class = bag.label.split('/').nth(1).unwrap_or("?").trim();
        t.row(vec![
            class.to_string(),
            bag.retained.to_string(),
            bag.discarded.to_string(),
            format!(
                "{:.1}%",
                100.0 * bag.discarded as f64 / bag.total_input.max(1) as f64
            ),
            bag.n_chunks.to_string(),
            fmt_f(bag.mean_chunk_size, 0),
            sr.n_chunks.to_string(),
            fmt_f(sr.mean_chunk_size, 0),
        ]);
    }
    let rendered = t.render();
    let dir = lab.results_dir()?;
    t.save_csv(&dir.join("table1.csv"))?;

    // Formation-cost side table (the §5.2 "12 days vs 3 hours" discussion).
    let mut cost = Table::new(
        "Chunk formation cost",
        &[
            "Index",
            "Distance-op equivalents",
            "Rounds",
            "Wall secs (this run)",
        ],
    );
    for h in &six {
        cost.row(vec![
            h.meta.label.clone(),
            h.meta.distance_ops.to_string(),
            h.meta.rounds.to_string(),
            fmt_f(h.meta.build_wall_secs, 2),
        ]);
    }
    cost.save_csv(&dir.join("table1_formation_cost.csv"))?;
    Ok(format!("{rendered}\n{}", cost.render()))
}

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

/// Regenerates **Figure 1**: sizes of the 30 largest chunks of each of the
/// six indexes (the paper plots these on a log scale — BAG's head chunks
/// are orders of magnitude above its mean).
pub fn fig1(lab: &Lab) -> EvalResult<String> {
    let six = lab.six_indexes()?;
    let headers: Vec<String> = std::iter::once("Rank".to_string())
        .chain(six.iter().map(|h| h.meta.label.clone()))
        .collect();
    let mut t = Table::new(
        "Figure 1. Size of the largest chunks (descriptors)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for rank in 0..30 {
        let mut row = vec![(rank + 1).to_string()];
        for h in &six {
            row.push(
                h.meta
                    .largest_sizes
                    .get(rank)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "—".into()),
            );
        }
        t.row(row);
    }
    let rendered = t.render();
    t.save_csv(&lab.results_dir()?.join("fig1.csv"))?;
    Ok(rendered)
}

// ---------------------------------------------------------------------------
// Experiment 1: Figures 2–5 + Table 2
// ---------------------------------------------------------------------------

/// All curves of experiment 1: the six indexes × the two workloads.
pub struct Exp1Curves {
    /// (index label, DQ curve, SQ curve) in index order.
    pub per_index: Vec<(String, QualityCurve, QualityCurve)>,
    /// k used.
    pub k: usize,
}

/// Runs (or loads from cache) every experiment-1 curve.
pub fn exp1_curves(lab: &Lab) -> EvalResult<Exp1Curves> {
    let six = lab.six_indexes()?;
    let dq = lab.dq()?;
    let sq = lab.sq()?;
    let mut per_index = Vec::with_capacity(6);
    for h in &six {
        eprintln!("[exp1] evaluating {} …", h.meta.label);
        let cd = lab.curve(h, &dq)?;
        let cs = lab.curve(h, &sq)?;
        per_index.push((h.meta.label.clone(), cd, cs));
    }
    Ok(Exp1Curves {
        per_index,
        k: lab.scale.k,
    })
}

fn curve_figure(
    lab: &Lab,
    curves: &Exp1Curves,
    title: &str,
    file: &str,
    pick: impl Fn(&(String, QualityCurve, QualityCurve)) -> &QualityCurve,
    value: impl Fn(&QualityCurve, usize) -> f64,
    digits: usize,
) -> EvalResult<String> {
    let headers: Vec<String> = std::iter::once("Neighbors".to_string())
        .chain(curves.per_index.iter().map(|(l, _, _)| l.clone()))
        .collect();
    let mut t = Table::new(
        title,
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for m in 1..=curves.k {
        let mut row = vec![m.to_string()];
        for entry in &curves.per_index {
            row.push(fmt_f(value(pick(entry), m), digits));
        }
        t.row(row);
    }
    let rendered = t.render();
    t.save_csv(&lab.results_dir()?.join(file))?;
    Ok(rendered)
}

/// Regenerates **Figure 2** (chunks read vs neighbours found, DQ).
pub fn fig2(lab: &Lab, curves: &Exp1Curves) -> EvalResult<String> {
    curve_figure(
        lab,
        curves,
        "Figure 2. Chunks read to find nearest neighbors (DQ)",
        "fig2.csv",
        |e| &e.1,
        |c, m| c.chunks_for(m),
        1,
    )
}

/// Regenerates **Figure 3** (chunks read vs neighbours found, SQ).
pub fn fig3(lab: &Lab, curves: &Exp1Curves) -> EvalResult<String> {
    curve_figure(
        lab,
        curves,
        "Figure 3. Chunks read to find nearest neighbors (SQ)",
        "fig3.csv",
        |e| &e.2,
        |c, m| c.chunks_for(m),
        1,
    )
}

/// Regenerates **Figure 4** (virtual elapsed time vs neighbours found, DQ).
pub fn fig4(lab: &Lab, curves: &Exp1Curves) -> EvalResult<String> {
    curve_figure(
        lab,
        curves,
        "Figure 4. Elapsed virtual time (s) to find nearest neighbors (DQ)",
        "fig4.csv",
        |e| &e.1,
        |c, m| c.time_for(m),
        3,
    )
}

/// Regenerates **Figure 5** (virtual elapsed time vs neighbours found, SQ).
pub fn fig5(lab: &Lab, curves: &Exp1Curves) -> EvalResult<String> {
    curve_figure(
        lab,
        curves,
        "Figure 5. Elapsed virtual time (s) to find nearest neighbors (SQ)",
        "fig5.csv",
        |e| &e.2,
        |c, m| c.time_for(m),
        3,
    )
}

/// Regenerates **Table 2**: average virtual time to run queries to
/// completion, per index and workload.
pub fn table2(lab: &Lab, curves: &Exp1Curves) -> EvalResult<String> {
    let mut t = Table::new(
        "Table 2. Time to completion (virtual seconds)",
        &["Chunk sizes", "BAG DQ", "BAG SQ", "SR DQ", "SR SQ"],
    );
    for pair in curves.per_index.chunks(2) {
        let class = pair[0].0.split('/').nth(1).unwrap_or("?").trim();
        t.row(vec![
            class.to_string(),
            fmt_f(pair[0].1.avg_completion_secs, 2),
            fmt_f(pair[0].2.avg_completion_secs, 2),
            fmt_f(pair[1].1.avg_completion_secs, 2),
            fmt_f(pair[1].2.avg_completion_secs, 2),
        ]);
    }
    let rendered = t.render();
    t.save_csv(&lab.results_dir()?.join("table2.csv"))?;
    Ok(rendered)
}

/// Runs the whole of Experiment 1, returning the concatenated report
/// (Figures 2–5 and Table 2).
pub fn exp1(lab: &Lab) -> EvalResult<String> {
    let curves = exp1_curves(lab)?;
    let mut out = String::new();
    for part in [
        fig2(lab, &curves)?,
        fig3(lab, &curves)?,
        fig4(lab, &curves)?,
        fig5(lab, &curves)?,
        table2(lab, &curves)?,
    ] {
        out.push_str(&part);
        out.push('\n');
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Experiment 2: Figures 6–7
// ---------------------------------------------------------------------------

/// Regenerates **Figures 6 and 7**: time to find 1/10/20/25/28/30
/// neighbours as a function of the (SR-tree) chunk size, over 16 chunk
/// indexes on the outlier-free collection.
pub fn exp2(lab: &Lab) -> EvalResult<String> {
    let six = lab.six_indexes()?;
    let subset = lab.small_retained_subset(&six)?;
    let marks = sweep_neighbor_marks(lab.scale.k);
    let dq = lab.dq()?;
    let sq = lab.sq()?;

    let mut out = String::new();
    for (fig_no, workload) in [(6, &dq), (7, &sq)] {
        let headers: Vec<String> = std::iter::once("Chunk size".to_string())
            .chain(marks.iter().map(|m| format!("{m} nbr")))
            .chain(std::iter::once("completion".to_string()))
            .collect();
        let mut t = Table::new(
            &format!(
                "Figure {fig_no}. Virtual time (s) to find neighbors vs chunk size ({})",
                workload.name
            ),
            &headers.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        for &size in &lab.scale.sweep_sizes() {
            let handle = lab.sweep_index(&subset, size)?;
            eprintln!("[exp2] {} chunk size {size} …", workload.name);
            let curve = lab.curve(&handle, workload)?;
            let mut row = vec![size.to_string()];
            for &m in &marks {
                row.push(fmt_f(curve.time_for(m), 3));
            }
            row.push(fmt_f(curve.avg_completion_secs, 2));
            t.row(row);
        }
        let rendered = t.render();
        t.save_csv(&lab.results_dir()?.join(format!("fig{fig_no}.csv")))?;
        out.push_str(&rendered);
        out.push('\n');
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Experiment 3: the stop-rule sweep (one scan per query)
// ---------------------------------------------------------------------------

/// The ladder of stop rules experiment 3 sweeps: chunk budgets, virtual
/// time budgets, relaxed-completion factors and exact completion — the
/// quality/time trade-off knobs of §4.3, all answered from a single scan
/// per query.
pub fn exp3_rules() -> Vec<StopRule> {
    vec![
        StopRule::Chunks(1),
        StopRule::Chunks(2),
        StopRule::Chunks(4),
        StopRule::Chunks(8),
        StopRule::VirtualTime(VirtualDuration::from_ms(60.0)),
        StopRule::VirtualTime(VirtualDuration::from_ms(250.0)),
        StopRule::ToCompletionEps(0.5),
        StopRule::ToCompletionEps(0.1),
        StopRule::ToCompletion,
    ]
}

fn rule_label(rule: &StopRule) -> String {
    match rule {
        StopRule::Chunks(n) => format!("{n} chunks"),
        StopRule::VirtualTime(t) => format!("{:.0} ms", t.as_secs() * 1e3),
        StopRule::ToCompletionEps(eps) => format!("completion ×{:.1}", 1.0 + eps),
        StopRule::ToCompletion => "completion".to_string(),
    }
}

/// Regenerates **Experiment 3**: the quality/time trade-off across the
/// whole stop-rule ladder, for every index of Table 1, on the DQ workload.
///
/// Where experiments 1 and 2 re-ran queries per setting, this sweep
/// answers *all* rules from one scan per query
/// ([`evaluate_stop_rules`]) — each row is still bit-identical to an
/// individual run with that rule, but the collection is read once.
pub fn exp3(lab: &Lab) -> EvalResult<String> {
    let six = lab.six_indexes()?;
    let dq = lab.dq()?;
    let rules = exp3_rules();
    let params = SearchParams {
        k: lab.scale.k,
        stop: StopRule::ToCompletion, // ignored: the ladder drives the scan
        prefetch_depth: 2,
        log_snapshots: false,
    };

    let mut t = Table::new(
        "Experiment 3. Stop-rule sweep (DQ, one scan per query)",
        &[
            "Index",
            "Stop rule",
            "Avg precision",
            "Avg chunks",
            "Avg virtual s",
            "Exact %",
        ],
    );
    let (mut shared_reads, mut per_rule_reads) = (0usize, 0usize);
    for h in &six {
        eprintln!("[exp3] sweeping {} …", h.meta.label);
        let truth = lab.truth(h, &dq)?;
        // Accumulators over the workload, one slot per rule.
        let mut precision = vec![0.0f64; rules.len()];
        let mut chunks = vec![0.0f64; rules.len()];
        let mut secs = vec![0.0f64; rules.len()];
        let mut exact = vec![0usize; rules.len()];
        for (qi, query) in dq.queries.iter().enumerate() {
            let results = evaluate_stop_rules(&h.store, &lab.model, query, &params, &rules)?;
            shared_reads += results.iter().map(|r| r.log.chunks_read).max().unwrap_or(0);
            for (ri, result) in results.iter().enumerate() {
                let ids: Vec<u32> = result.neighbors.iter().map(|n| n.id).collect();
                precision[ri] += precision_at(&ids, &truth.ids[qi]);
                chunks[ri] += result.log.chunks_read as f64;
                secs[ri] += result.log.total_virtual.as_secs();
                exact[ri] += result.log.completed as usize;
                per_rule_reads += result.log.chunks_read;
            }
        }
        let nq = dq.len() as f64;
        for (ri, rule) in rules.iter().enumerate() {
            t.row(vec![
                h.meta.label.clone(),
                rule_label(rule),
                fmt_f(precision[ri] / nq, 3),
                fmt_f(chunks[ri] / nq, 1),
                fmt_f(secs[ri] / nq, 3),
                format!("{:.0}%", 100.0 * exact[ri] as f64 / nq),
            ]);
        }
    }
    let rendered = t.render();
    t.save_csv(&lab.results_dir()?.join("exp3.csv"))?;
    Ok(format!(
        "{rendered}\nOne scan per query answered all {} rules: {} chunk reads \
         (individual runs would have read {}).\n",
        rules.len(),
        shared_reads,
        per_rule_reads
    ))
}

// ---------------------------------------------------------------------------
// Experiment 4: the serving layer (policies × concurrency)
// ---------------------------------------------------------------------------

/// The concurrency levels (active-session slots) experiment 4 sweeps.
pub fn exp4_concurrency() -> Vec<usize> {
    vec![2, 8, 32]
}

/// Whether two results are bit-identical: same neighbours (ids and
/// distance bits), same scan counters, same virtual-clock bits.
fn results_bit_identical(a: &SearchResult, b: &SearchResult) -> bool {
    a.neighbors.len() == b.neighbors.len()
        && a.neighbors
            .iter()
            .zip(b.neighbors.iter())
            .all(|(x, y)| x.id == y.id && x.dist.to_bits() == y.dist.to_bits())
        && a.log.chunks_read == b.log.chunks_read
        && a.log.descriptors_scanned == b.log.descriptors_scanned
        && a.log.bytes_read == b.log.bytes_read
        && a.log.completed == b.log.completed
        && a.log.total_virtual.as_secs().to_bits() == b.log.total_virtual.as_secs().to_bits()
}

/// Regenerates **Experiment 4**: the multi-query serving sweep. A Poisson
/// arrival trace of the DQ workload is offered at twice the serial service
/// rate to the interleaved [`Scheduler`], for every policy at every
/// concurrency level. Each run reports fleet throughput, latency
/// percentiles, answer quality and chunk traffic — and every per-query
/// result is bit-compared against the serial one-query-at-a-time
/// reference, which scheduling must never change.
pub fn exp4(lab: &Lab) -> EvalResult<String> {
    let handle = lab.serving_index()?;
    let handle = &handle;
    let dq = lab.dq()?;
    if dq.is_empty() {
        return Err("exp4 needs a non-empty DQ workload".into());
    }
    let truth = lab.truth(handle, &dq)?;
    let params = SearchParams {
        k: lab.scale.k,
        stop: StopRule::ToCompletionEps(0.5),
        prefetch_depth: 2,
        log_snapshots: false,
    };
    let snap = Snapshot::new(handle.store.clone(), lab.model);

    // Serial reference: one query at a time, each over its own private
    // source — the answers every scheduled run must reproduce bit for bit.
    eprintln!("[exp4] serial reference over {} queries …", dq.len());
    let mut serial = Vec::with_capacity(dq.len());
    let mut serial_secs = 0.0f64;
    let mut serial_precision = 0.0f64;
    for (qi, query) in dq.queries.iter().enumerate() {
        let r = snap.search(query, &params)?;
        serial_secs += r.log.total_virtual.as_secs();
        let ids: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
        serial_precision += precision_at(&ids, &truth.ids[qi]);
        serial.push(r);
    }
    serial_precision /= dq.len() as f64;

    // Offer four times the serial service rate: the device saturates, a
    // backlog of concurrent sessions builds up, and the policies genuinely
    // contend for the next chunk.
    let rate_qps = 4.0 * dq.len() as f64 / serial_secs.max(1e-9);
    let arrivals = poisson_arrivals(dq.len(), rate_qps, lab.scale.seed ^ 0xA4);
    let trace: Vec<(Vector, VirtualDuration)> = dq
        .queries
        .iter()
        .zip(arrivals.arrivals.iter())
        .map(|(q, &t)| (*q, VirtualDuration::from_secs(t)))
        .collect();

    let mut t = Table::new(
        &format!(
            "Experiment 4. Serving under load (DQ, Poisson at {rate_qps:.1} q/s, \
             {} — 4× serial capacity)",
            handle.meta.label
        ),
        &[
            "Policy",
            "Active",
            "Thru q/s",
            "p50 s",
            "p99 s",
            "Precision",
            "Fetches",
            "Disk reads",
            "Shared hits",
            "Serial-identical",
        ],
    );
    let mut quality = Table::new(
        "Experiment 4 fleet quality curves",
        &["Policy", "Active", "t_secs", "completed", "mean_precision"],
    );
    // (concurrency, policy) → chunk fetches, for the sharing summary.
    let mut fetch_counts: Vec<(usize, Policy, u64)> = Vec::new();
    let mut all_identical = true;

    for &active in &exp4_concurrency() {
        for policy in Policy::ALL {
            eprintln!("[exp4] {} × {active} active …", policy.name());
            let mut config = SchedulerConfig::new(policy, active);
            config.max_queued = dq.len(); // admit everything: compare full runs
            let report = Scheduler::new(snap.clone(), config).serve_trace(&trace, &params)?;

            let mut identical =
                report.stats.rejected == 0 && report.completions.len() == serial.len();
            let mut precision = 0.0f64;
            let mut quality_points = Vec::with_capacity(report.completions.len());
            for c in &report.completions {
                let qi = c.id as usize;
                identical = identical && results_bit_identical(&serial[qi], &c.result);
                let ids: Vec<u32> = c.result.neighbors.iter().map(|n| n.id).collect();
                let p = precision_at(&ids, &truth.ids[qi]);
                precision += p;
                quality_points.push((c.finish.as_secs(), p));
            }
            precision /= report.completions.len().max(1) as f64;
            all_identical = all_identical && identical;
            for point in fleet_quality_curve(&quality_points) {
                quality.row(vec![
                    policy.name().to_string(),
                    active.to_string(),
                    fmt_f(point.at_secs, 4),
                    point.completed.to_string(),
                    fmt_f(point.mean_precision, 4),
                ]);
            }

            let lat = LatencySummary::from_secs(&report.latencies_secs());
            t.row(vec![
                policy.name().to_string(),
                active.to_string(),
                fmt_f(report.throughput_qps(), 1),
                fmt_f(lat.p50_secs, 3),
                fmt_f(lat.p99_secs, 3),
                fmt_f(precision, 3),
                report.stats.fetches.to_string(),
                report.stats.disk_reads.to_string(),
                report.stats.cache.cross_query_hits.to_string(),
                if identical { "yes" } else { "NO" }.to_string(),
            ]);
            fetch_counts.push((active, policy, report.stats.fetches));
        }
    }

    let rendered = t.render();
    let dir = lab.results_dir()?;
    t.save_csv(&dir.join("exp4.csv"))?;
    quality.save_csv(&dir.join("exp4_quality.csv"))?;

    let fetches_of = |active: usize, policy: Policy| {
        fetch_counts
            .iter()
            .find(|(a, p, _)| *a == active && *p == policy)
            .map(|(_, _, f)| *f)
            .unwrap_or(0)
    };
    let mut out = format!("{rendered}\nSerial mean precision: {serial_precision:.3}.\n");
    for &active in &exp4_concurrency() {
        let fair = fetches_of(active, Policy::FairShare);
        let mwc = fetches_of(active, Policy::MostWantedChunk);
        let saved = if fair > 0 {
            100.0 * (fair.saturating_sub(mwc)) as f64 / fair as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "At {active} concurrent sessions: most-wanted-chunk fetched {mwc} chunks \
             vs fair-share {fair} ({saved:.0}% fewer).\n"
        ));
    }
    out.push_str(&format!(
        "All per-query results bit-identical to serial under every policy: {}.\n",
        if all_identical { "yes" } else { "NO" }
    ));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Experiment 5: search under chunk loss (the chaos sweep)
// ---------------------------------------------------------------------------

/// The fault rates experiment 5 sweeps (permanent loss at the rate,
/// transient faults at half of it).
pub fn exp5_rates() -> Vec<f64> {
    vec![0.0, 0.05, 0.1, 0.2, 0.4]
}

/// The retry policies experiment 5 compares: give up on the first failure
/// vs a budget that always clears transient faults
/// ([`TRANSIENT_CLEAR`]` + 1` attempts).
pub fn exp5_policies() -> Vec<(&'static str, RetryPolicy)> {
    vec![
        ("none", RetryPolicy::none()),
        (
            "retry",
            RetryPolicy::new(
                TRANSIENT_CLEAR + 1,
                VirtualDuration::from_ms(5.0),
                VirtualDuration::from_ms(1.0),
            ),
        ),
    ]
}

/// The fault schedule for one exp5 cell: permanent loss at `rate`,
/// transient faults at half the rate, keyed by the lab seed so every run
/// of the experiment observes the same schedule.
fn exp5_plan(lab: &Lab, rate: f64) -> FaultPlan {
    FaultPlan::new(FaultConfig {
        permanent_rate: rate,
        transient_rate: rate * 0.5,
        ..FaultConfig::quiet(lab.scale.seed ^ 0xC5)
    })
}

/// Runs every query of `queries` against `handle`, either undecorated
/// (`plan: None`, the baseline) or through the
/// `RetrySource(FaultSource(FileSource))` chaos stack with a skipping
/// session.
fn exp5_run(
    lab: &Lab,
    handle: &IndexHandle,
    queries: &[Vector],
    params: &SearchParams,
    plan: Option<FaultPlan>,
    retry: RetryPolicy,
) -> EvalResult<Vec<SearchResult>> {
    let mut out = Vec::with_capacity(queries.len());
    for query in queries {
        // A fresh fault source per query: attempt counters reset, so each
        // query observes the plan's schedule from attempt zero.
        let source: Arc<dyn ChunkSource> = match plan {
            None => Arc::new(FileSource::new(&handle.store)),
            Some(plan) => Arc::new(RetrySource::new(
                Arc::new(FaultSource::new(
                    Arc::new(FileSource::new(&handle.store)),
                    plan,
                )),
                retry,
            )),
        };
        let mut session =
            SearchSession::with_source(&handle.store, &lab.model, query, params, source);
        session.set_skip_policy(SkipPolicy::SkipUnavailable);
        session.run_to_stop()?;
        out.push(session.into_result());
    }
    Ok(out)
}

/// Whether the plan dooms `chunk` under `policy`: every attempt the
/// budget allows draws a fault, so the chunk must be reported lost.
fn exp5_doomed(plan: &FaultPlan, policy: &RetryPolicy, chunk: usize) -> bool {
    (0..policy.max_attempts).all(|a| !matches!(plan.fault_for(chunk, a), Fault::Deliver { .. }))
}

/// Regenerates **Experiment 5**: the quality-degradation curve under
/// injected chunk loss. For two chunk granularities the DQ workload runs
/// under a fixed chunk-budget stop rule while the fault rate sweeps
/// upward, once per retry policy. Every faulted search must complete with
/// an honest [`Degradation`](eff2_core::search::Degradation) report; the
/// rate-0 stack must be bit-identical to the undecorated search; and
/// because the injected loss sets are nested across rates, precision must
/// be monotonically non-increasing in the fault rate.
pub fn exp5(lab: &Lab) -> EvalResult<String> {
    let handles = [lab.serving_index()?, lab.chaos_index()?];
    let dq = lab.dq()?;
    if dq.is_empty() {
        return Err("exp5 needs a non-empty DQ workload".into());
    }
    let rates = exp5_rates();
    let policies = exp5_policies();

    let mut t = Table::new(
        "Experiment 5. Quality degradation under chunk loss (DQ, fixed chunk budget)",
        &[
            "Index",
            "Retry",
            "Fault rate",
            "Precision",
            "Chunks lost",
            "Desc lost",
            "Avg virtual s",
            "Degraded %",
        ],
    );
    let mut bit_identical = true;
    let mut all_reported = true;
    let mut monotone = true;

    for handle in &handles {
        let n_chunks = handle.store.n_chunks();
        // A fixed budget strictly inside the collection: lost chunks
        // consume it, so quality honestly pays for every loss.
        let budget = (n_chunks * 3 / 5).max(1);
        let params = SearchParams {
            k: lab.scale.k,
            stop: StopRule::Chunks(budget),
            prefetch_depth: 2,
            log_snapshots: false,
        };
        let truth = lab.truth(handle, &dq)?;
        eprintln!(
            "[exp5] {} baseline ({} chunks, budget {budget}) …",
            handle.meta.label, n_chunks
        );
        let baseline = exp5_run(lab, handle, &dq.queries, &params, None, RetryPolicy::none())?;

        for (policy_name, policy) in &policies {
            let mut prev_precision = f64::INFINITY;
            for &rate in &rates {
                eprintln!("[exp5] {} {policy_name} rate {rate} …", handle.meta.label);
                let plan = exp5_plan(lab, rate);
                let results = exp5_run(lab, handle, &dq.queries, &params, Some(plan), *policy)?;

                if rate == 0.0 {
                    for (b, r) in baseline.iter().zip(results.iter()) {
                        bit_identical = bit_identical && results_bit_identical(b, r);
                    }
                }
                let mut precision = 0.0f64;
                let mut lost_chunks = 0usize;
                let mut lost_descriptors = 0u64;
                let mut secs = 0.0f64;
                let mut degraded = 0usize;
                for (qi, r) in results.iter().enumerate() {
                    let ids: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
                    precision += precision_at(&ids, &truth.ids[qi]);
                    let d = &r.log.degradation;
                    lost_chunks += d.chunks_lost;
                    lost_descriptors += d.descriptors_lost;
                    secs += r.log.total_virtual.as_secs();
                    degraded += usize::from(d.is_degraded());
                    // An honest report: the consumed budget is exactly
                    // scanned + lost, and each lost chunk is one the plan
                    // doomed under this retry budget.
                    let consumed = r.log.chunks_read + d.chunks_lost;
                    all_reported = all_reported
                        && consumed == budget.min(n_chunks)
                        && d.lost_chunks.iter().all(|&c| exp5_doomed(&plan, policy, c));
                }
                let nq = dq.len() as f64;
                precision /= nq;
                monotone = monotone && precision <= prev_precision;
                prev_precision = precision;
                t.row(vec![
                    handle.meta.label.clone(),
                    (*policy_name).to_string(),
                    fmt_f(rate, 2),
                    fmt_f(precision, 3),
                    fmt_f(lost_chunks as f64 / nq, 1),
                    fmt_f(lost_descriptors as f64 / nq, 0),
                    fmt_f(secs / nq, 3),
                    format!("{:.0}%", 100.0 * degraded as f64 / nq),
                ]);
            }
        }
    }

    let rendered = t.render();
    t.save_csv(&lab.results_dir()?.join("exp5.csv"))?;
    Ok(format!(
        "{rendered}\nRate-0 chaos stack bit-identical to the undecorated search: {}.\n\
         All faulted searches completed with degradation reports: {}.\n\
         Precision monotonically non-increasing in fault rate: {}.\n",
        if bit_identical { "yes" } else { "NO" },
        if all_reported { "yes" } else { "NO" },
        if monotone { "yes" } else { "NO" },
    ))
}

// ---------------------------------------------------------------------------
// Experiment 6 — quantized descriptors, ADC scans, two-level ranking
// ---------------------------------------------------------------------------

/// The rerank depths experiment 6 sweeps: the ADC scan keeps an `R·k`
/// candidate pool and the exact tail rescores it down to `k`.
pub fn exp6_rerank_mults() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// The codecs experiment 6 compares (the names
/// [`Lab::quantized_index`](crate::lab::Lab::quantized_index) accepts).
pub fn exp6_codecs() -> Vec<&'static str> {
    vec!["sq8", "pq"]
}

/// Neighbour lists bitwise equal: same ids, same distance bits.
fn neighbors_bit_identical(a: &SearchResult, b: &SearchResult) -> bool {
    a.neighbors.len() == b.neighbors.len()
        && a.neighbors
            .iter()
            .zip(b.neighbors.iter())
            .all(|(x, y)| x.id == y.id && x.dist.to_bits() == y.dist.to_bits())
}

/// Per-query averages of one exp6 grid cell.
struct Exp6Cell {
    precision: f64,
    bytes: f64,
    rerank_bytes: f64,
    secs: f64,
    evals: f64,
}

fn exp6_cell(results: &[SearchResult], truth: &GroundTruth) -> Exp6Cell {
    let nq = results.len().max(1) as f64;
    let mut c = Exp6Cell {
        precision: 0.0,
        bytes: 0.0,
        rerank_bytes: 0.0,
        secs: 0.0,
        evals: 0.0,
    };
    for (qi, r) in results.iter().enumerate() {
        let ids: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
        c.precision += precision_at(&ids, &truth.ids[qi]);
        c.bytes += r.log.bytes_read as f64;
        c.rerank_bytes += r.log.rerank_bytes as f64;
        c.secs += r.log.total_virtual.as_secs();
        c.evals += r.log.centroid_evals as f64;
    }
    c.precision /= nq;
    c.bytes /= nq;
    c.rerank_bytes /= nq;
    c.secs /= nq;
    c.evals /= nq;
    c
}

/// Every chunk of the v2 `base` store read back through the v3 `quant`
/// store's raw view: ids equal and packed floats bitwise equal. The two
/// stores hold the same SR-tree formation, so this is the format-migration
/// check — the v3 raw region must be byte-compatible with v2 readers.
fn exp6_v2_v3_compatible(base: &IndexHandle, quant: &IndexHandle) -> EvalResult<bool> {
    let raw3 = quant.store.raw_view();
    if base.store.n_chunks() != raw3.n_chunks() {
        return Ok(false);
    }
    let mut r2 = base.store.reader()?;
    let mut r3 = raw3.reader()?;
    let mut p2 = eff2_storage::ChunkData::default();
    let mut p3 = eff2_storage::ChunkData::default();
    for i in 0..base.store.n_chunks() {
        r2.read_chunk(i, &mut p2)?;
        r3.read_chunk(i, &mut p3)?;
        let same = p2.ids == p3.ids
            && p2.packed.len() == p3.packed.len()
            && p2
                .packed
                .iter()
                .zip(p3.packed.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !same {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Regenerates **Experiment 6**: the quantized-descriptor sweep. On the
/// serving index (and its format-v3 quantized twins) the DQ workload runs
/// uncompressed baselines — flat and two-level ranking, at a full budget,
/// a partial budget and to completion — then sweeps codec (SQ8, PQ) ×
/// ranking level × rerank depth `R` under the partial budget, where the
/// ADC scan keeps `R·k` candidates and an exact rerank tail re-reads only
/// their chunks raw. Invariants checked: the rerank tail at a full budget
/// and full-depth pool is bit-identical to the uncompressed search;
/// precision is monotonically non-decreasing in `R` (nested pools);
/// two-level ranking leaves to-completion answers bit-identical while
/// spending fewer centroid evaluations; and the v3 raw region read back
/// equals the v2 store byte for byte.
pub fn exp6(lab: &Lab) -> EvalResult<String> {
    let base = lab.serving_index()?;
    let dq = lab.dq()?;
    if dq.is_empty() {
        return Err("exp6 needs a non-empty DQ workload".into());
    }
    let truth = lab.truth(&base, &dq)?;
    let k = lab.scale.k;
    let n_chunks = base.store.n_chunks();
    let budget = (n_chunks * 3 / 5).max(1);
    let retained = base.store.total_descriptors() as usize;
    // A pool multiplier that makes the rerank tail rescore everything the
    // scan saw: R·k ≥ n, the exact-recovery regime.
    let full_mult = retained.div_ceil(k.max(1)).max(1);

    let full = SearchParams {
        k,
        stop: StopRule::Chunks(n_chunks),
        prefetch_depth: 2,
        log_snapshots: false,
    };
    let partial = SearchParams {
        stop: StopRule::Chunks(budget),
        ..full
    };
    let complete = SearchParams {
        stop: StopRule::ToCompletion,
        ..full
    };

    let mut t = Table::new(
        "Experiment 6. Quantized descriptors: ADC scan + exact rerank tail vs raw scan (DQ)",
        &[
            "Scan",
            "Ranking",
            "R",
            "Stop",
            "Precision",
            "Bytes/q",
            "Rerank B/q",
            "Avg virtual s",
            "Centroid evals/q",
        ],
    );

    // --- Uncompressed baselines ------------------------------------------
    eprintln!(
        "[exp6] raw baselines on {} ({} chunks, budget {budget}) …",
        base.meta.label, n_chunks
    );
    let coarse_raw = CoarseQuantizer::for_store(&base.store);
    let run_raw = |params: &SearchParams, two_level: bool| -> EvalResult<Vec<SearchResult>> {
        let mut out = Vec::with_capacity(dq.len());
        for q in &dq.queries {
            out.push(if two_level {
                search_two_level(&base.store, &lab.model, q, params, &coarse_raw)?
            } else {
                search(&base.store, &lab.model, q, params)?
            });
        }
        Ok(out)
    };
    let raw_full = run_raw(&full, false)?;
    let raw_part = run_raw(&partial, false)?;
    let raw_done = run_raw(&complete, false)?;
    let two_done = run_raw(&complete, true)?;
    let two_part = run_raw(&partial, true)?;

    let two_level_exact = raw_done
        .iter()
        .zip(two_done.iter())
        .all(|(a, b)| neighbors_bit_identical(a, b));
    let raw_part_cell = exp6_cell(&raw_part, &truth);
    let raw_done_cell = exp6_cell(&raw_done, &truth);
    let two_done_cell = exp6_cell(&two_done, &truth);
    let evals_factor = raw_done_cell.evals / two_done_cell.evals.max(1.0);

    let mut push_row = |scan: &str, ranking: &str, r: &str, stop: &str, cell: &Exp6Cell| {
        t.row(vec![
            scan.to_string(),
            ranking.to_string(),
            r.to_string(),
            stop.to_string(),
            fmt_f(cell.precision, 3),
            fmt_f(cell.bytes, 0),
            fmt_f(cell.rerank_bytes, 0),
            fmt_f(cell.secs, 3),
            fmt_f(cell.evals, 1),
        ]);
    };
    push_row("raw", "flat", "—", "full", &exp6_cell(&raw_full, &truth));
    push_row("raw", "flat", "—", "3/5", &raw_part_cell);
    push_row("raw", "flat", "—", "compl", &raw_done_cell);
    push_row("raw", "2-level", "—", "compl", &two_done_cell);
    push_row("raw", "2-level", "—", "3/5", &exp6_cell(&two_part, &truth));

    // --- Quantized sweep --------------------------------------------------
    let mut quants = Vec::new();
    for name in exp6_codecs() {
        quants.push((name, lab.quantized_index(name)?));
    }
    let mut monotone = true;
    let mut tail_exact = true;
    // The best quantized partial-budget cell that stays within 0.01 of the
    // raw same-budget baseline while reading strictly fewer bytes.
    let mut best: Option<(String, usize, f64, f64)> = None;
    for (name, qh) in &quants {
        let coarse_q = CoarseQuantizer::for_store(&qh.store);
        for two_level in [false, true] {
            let ranking = if two_level { "2-level" } else { "flat" };
            let mut prev = -1.0f64;
            for &r_mult in &exp6_rerank_mults() {
                eprintln!("[exp6] {} {ranking} R={r_mult} …", qh.meta.label);
                let mut results = Vec::with_capacity(dq.len());
                for q in &dq.queries {
                    results.push(search_quantized_with(
                        &qh.store,
                        &lab.model,
                        q,
                        &partial,
                        r_mult,
                        two_level.then_some(&coarse_q),
                    )?);
                }
                let cell = exp6_cell(&results, &truth);
                monotone = monotone && cell.precision >= prev;
                prev = cell.precision;
                if cell.precision >= raw_part_cell.precision - 0.01
                    && cell.bytes < raw_part_cell.bytes
                    && best.as_ref().is_none_or(|b| cell.bytes < b.3)
                {
                    best = Some((
                        format!("{name}/{ranking}"),
                        r_mult,
                        cell.precision,
                        cell.bytes,
                    ));
                }
                push_row(name, ranking, &r_mult.to_string(), "3/5", &cell);
            }
        }
        // The exact-recovery cell: full budget, full-depth pool — the tail
        // must reproduce the uncompressed answer bit for bit.
        eprintln!(
            "[exp6] {} flat R={full_mult} (full budget) …",
            qh.meta.label
        );
        let mut results = Vec::with_capacity(dq.len());
        for q in &dq.queries {
            results.push(search_quantized_with(
                &qh.store, &lab.model, q, &full, full_mult, None,
            )?);
        }
        tail_exact = tail_exact
            && raw_full
                .iter()
                .zip(results.iter())
                .all(|(a, b)| neighbors_bit_identical(a, b));
        push_row(
            name,
            "flat",
            &full_mult.to_string(),
            "full",
            &exp6_cell(&results, &truth),
        );
    }

    let compat = exp6_v2_v3_compatible(&base, &quants[0].1)?;

    let rendered = t.render();
    t.save_csv(&lab.results_dir()?.join("exp6.csv"))?;
    let best_line = match &best {
        Some((codec, r, p, b)) => format!(
            "yes ({codec}, R = {r}: precision {} vs {}, bytes {} vs {})",
            fmt_f(*p, 3),
            fmt_f(raw_part_cell.precision, 3),
            fmt_f(*b, 0),
            fmt_f(raw_part_cell.bytes, 0),
        ),
        None => "NO".to_string(),
    };
    Ok(format!(
        "{rendered}\nRerank tail bit-identical to the uncompressed baseline at full budget: {}.\n\
         Precision monotonically non-decreasing in rerank depth: {}.\n\
         Neighbor ids unchanged under two-level ranking: {} ({} vs {} centroid evals per query to completion, {}x fewer).\n\
         v2 and v3 chunk files read-compatible: {}.\n\
         Quantized scan within 0.01 of the raw same-budget baseline with fewer bytes: {best_line}.\n",
        if tail_exact { "yes" } else { "NO" },
        if monotone { "yes" } else { "NO" },
        if two_level_exact { "yes" } else { "NO" },
        fmt_f(raw_done_cell.evals, 1),
        fmt_f(two_done_cell.evals, 1),
        fmt_f(evals_factor, 1),
        if compat { "yes" } else { "NO" },
    ))
}

// ---------------------------------------------------------------------------
// Experiment 7 — the sharded fleet: scatter–gather, placement, failover
// ---------------------------------------------------------------------------

/// The shard counts experiment 7 sweeps.
pub fn exp7_shards() -> Vec<usize> {
    vec![1, 4, 16]
}

/// The replication factors experiment 7 sweeps.
pub fn exp7_replication() -> Vec<usize> {
    vec![1, 2, 3]
}

/// Finds a fault seed whose plan permanently loses at least one (and at
/// most a handful of) chunks of an `n_chunks`-chunk store — the canonical
/// "a disk died under one chunk" scenario. Deterministic: the scan starts
/// at `base_seed` and takes the first seed that qualifies.
fn exp7_lossy_plan(base_seed: u64, n_chunks: usize) -> FaultPlan {
    let rate = (2.0 / n_chunks.max(1) as f64).min(0.5);
    for offset in 0..1_000u64 {
        let plan = FaultPlan::new(FaultConfig::lossy(base_seed.wrapping_add(offset), rate));
        let lost = plan.permanent_losses(n_chunks).len();
        if (1..=3).contains(&lost) {
            return plan;
        }
    }
    // Pathologically tiny stores: lose chunk coverage guarantees and fall
    // back to a denser plan that certainly hits something.
    FaultPlan::new(FaultConfig::lossy(base_seed, 0.5))
}

/// Regenerates **Experiment 7**: the sharded-fleet sweep. The DQ workload,
/// skewed by a Zipf draw so a few hot queries repeat, is offered at 16×
/// the serial service rate to a [`FleetScheduler`] for every shard count ×
/// replication factor × placement policy. Every cell's merged answers are
/// bit-compared against the serial single-device reference (sharding must
/// never change an answer), the placement policies are compared on
/// cross-shard chunk traffic and primary-placement imbalance, and a
/// permanent-chunk-loss scenario shows replication turning today's
/// `Degraded` results into failover events.
pub fn exp7(lab: &Lab) -> EvalResult<String> {
    let handle = lab.serving_index()?;
    let handle = &handle;
    let dq = lab.dq()?;
    if dq.is_empty() {
        return Err("exp7 needs a non-empty DQ workload".into());
    }
    let params = SearchParams {
        k: lab.scale.k,
        stop: StopRule::ToCompletionEps(0.5),
        prefetch_depth: 2,
        log_snapshots: false,
    };
    let snap = Snapshot::new(handle.store.clone(), lab.model);

    // Zipf-skew the query stream: a few hot queries dominate, so shards
    // holding their chunks genuinely contend and placement matters.
    let picks = zipf_assignments(dq.len(), dq.len(), 0.8, lab.scale.seed ^ 0xA7);
    let queries: Vec<Vector> = picks.iter().map(|&p| dq.queries[p as usize]).collect();

    // Serial reference: the answers every fleet cell must reproduce.
    eprintln!("[exp7] serial reference over {} queries …", queries.len());
    let mut serial = Vec::with_capacity(queries.len());
    let mut serial_secs = 0.0f64;
    for query in &queries {
        let r = snap.search(query, &params)?;
        serial_secs += r.log.total_virtual.as_secs();
        serial.push(r);
    }

    // 16× the serial service rate: far past single-device saturation — the
    // regime where a fleet is the only way to keep latency bounded.
    let rate_qps = 16.0 * queries.len() as f64 / serial_secs.max(1e-9);
    let arrivals = poisson_arrivals(queries.len(), rate_qps, lab.scale.seed ^ 0xA7);
    let trace: Vec<(Vector, VirtualDuration)> = queries
        .iter()
        .zip(arrivals.arrivals.iter())
        .map(|(q, &t)| (*q, VirtualDuration::from_secs(t)))
        .collect();

    let mut t = Table::new(
        &format!(
            "Experiment 7. Sharded fleet serving (DQ Zipf-skewed, Poisson at {rate_qps:.1} q/s, \
             {} — 16× serial capacity)",
            handle.meta.label
        ),
        &[
            "Shards",
            "Repl",
            "Placement",
            "Thru q/s",
            "p50 s",
            "p99 s",
            "Disk reads",
            "Max shard reads",
            "Cross-shard",
            "Imbalance",
            "Serial-identical",
        ],
    );
    let mut all_identical = true;
    let mut imbalance_populated = true;
    // (shards, repl) → cross-shard fetches per placement, for the
    // locality-vs-hash comparison.
    let mut cross_of: Vec<(usize, usize, Placement, u64)> = Vec::new();

    for &n_shards in &exp7_shards() {
        for &replication in &exp7_replication() {
            for placement in Placement::ALL {
                eprintln!(
                    "[exp7] {n_shards} shard(s) × R{replication} × {} …",
                    placement.name()
                );
                let mut config = FleetConfig::new(Policy::MostWantedChunk, n_shards, 8);
                config.placement = placement;
                config.replication = replication;
                config.max_queued = trace.len(); // admit everything: compare full runs
                let fleet =
                    FleetScheduler::new(snap.clone(), config).serve_trace(&trace, &params)?;
                let report = &fleet.report;

                let mut identical =
                    report.stats.rejected == 0 && report.completions.len() == serial.len();
                for c in &report.completions {
                    identical =
                        identical && results_bit_identical(&serial[c.id as usize], &c.result);
                }
                all_identical = all_identical && identical;
                imbalance_populated = imbalance_populated
                    && fleet.imbalance_factor.is_finite()
                    && fleet.imbalance_factor >= 1.0;
                cross_of.push((n_shards, replication, placement, fleet.cross_shard_fetches));

                let lat = LatencySummary::from_secs(&report.latencies_secs());
                let max_shard_reads = report
                    .stats
                    .disk_reads_by_shard
                    .iter()
                    .copied()
                    .max()
                    .unwrap_or(0);
                t.row(vec![
                    n_shards.to_string(),
                    replication.to_string(),
                    placement.name().to_string(),
                    fmt_f(report.throughput_qps(), 1),
                    fmt_f(lat.p50_secs, 3),
                    fmt_f(lat.p99_secs, 3),
                    report.stats.disk_reads.to_string(),
                    max_shard_reads.to_string(),
                    fleet.cross_shard_fetches.to_string(),
                    fmt_f(fleet.imbalance_factor, 2),
                    if identical { "yes" } else { "NO" }.to_string(),
                ]);
            }
        }
    }

    // Does centroid-locality placement actually keep chunk traffic on the
    // query's home shard? Compare the placements cell by cell.
    let locality_wins = cross_of.iter().any(|&(s, r, p, cross)| {
        s > 1
            && p == Placement::CentroidLocality
            && cross_of.iter().any(|&(s2, r2, p2, hash_cross)| {
                s2 == s && r2 == r && p2 == Placement::ChunkHash && cross < hash_cross
            })
    });

    // The failover scenario: a fault plan permanently loses a chunk or
    // two. Without replication every full scan that wants a lost chunk
    // degrades — exactly today's behaviour. With R ≥ 2 the read fails over
    // to a replica and the answer stays exact.
    let full_scan = SearchParams {
        stop: StopRule::Chunks(usize::MAX),
        ..params
    };
    let n_failover_queries = queries.len().min(8);
    let failover_trace: Vec<(Vector, VirtualDuration)> =
        trace.iter().take(n_failover_queries).cloned().collect();
    let plan = exp7_lossy_plan(lab.scale.seed ^ 0xA7, handle.store.n_chunks());
    let retry = RetryPolicy::new(
        TRANSIENT_CLEAR + 1,
        VirtualDuration::from_ms(5.0),
        VirtualDuration::from_ms(1.0),
    );
    let mut f = Table::new(
        "Experiment 7 failover: permanent chunk loss under replication (full scans)",
        &["Repl", "Degraded", "Exact", "Failovers", "Chunks abandoned"],
    );
    let mut r1_degraded = 0usize;
    let mut higher_r_all_exact = true;
    let mut higher_r_failed_over = true;
    for &replication in &exp7_replication() {
        let mut config = FleetConfig::new(Policy::MostWantedChunk, 4, 4);
        config.replication = replication;
        config.max_queued = failover_trace.len();
        config.fault_plan = Some(plan);
        config.retry = retry;
        let fleet =
            FleetScheduler::new(snap.clone(), config).serve_trace(&failover_trace, &full_scan)?;
        let degraded = fleet
            .report
            .completions
            .iter()
            .filter(|c| c.result.log.degradation.is_degraded())
            .count();
        let exact = fleet.report.completions.len() - degraded;
        if replication == 1 {
            r1_degraded = degraded;
        } else {
            higher_r_all_exact = higher_r_all_exact && degraded == 0;
            higher_r_failed_over = higher_r_failed_over && fleet.failovers > 0;
        }
        f.row(vec![
            replication.to_string(),
            degraded.to_string(),
            exact.to_string(),
            fleet.failovers.to_string(),
            fleet.report.stats.chunks_abandoned.to_string(),
        ]);
    }
    let failover_masks = r1_degraded > 0 && higher_r_all_exact && higher_r_failed_over;

    let rendered = t.render();
    let dir = lab.results_dir()?;
    t.save_csv(&dir.join("exp7.csv"))?;
    f.save_csv(&dir.join("exp7_failover.csv"))?;
    Ok(format!(
        "{rendered}\n{}\n\
         All merged fleet answers bit-identical to solo under every cell: {}.\n\
         Imbalance factor populated for both placements in every cell: {}.\n\
         Centroid-locality fetched fewer cross-shard chunks than chunk-hash in at least one cell: {}.\n\
         Replication masked permanent chunk loss as failover: {} \
         (R=1 degraded {} of {} full scans; R>=2 all exact with failovers).\n",
        f.render(),
        if all_identical { "yes" } else { "NO" },
        if imbalance_populated { "yes" } else { "NO" },
        if locality_wins { "yes" } else { "NO" },
        if failover_masks { "yes" } else { "NO" },
        r1_degraded,
        n_failover_queries,
    ))
}

// ---------------------------------------------------------------------------
// Experiment 8: live mutability — serving under skewed ingest
// ---------------------------------------------------------------------------

/// The ingest-rate multipliers experiment 8 sweeps: mutation arrivals at
/// this multiple of the query arrival rate.
pub fn exp8_ingest_multipliers() -> Vec<f64> {
    vec![0.5, 4.0]
}

/// Experiment 8's target chunk size. Fixed rather than scale-derived:
/// rebalancing operates at chunk granularity, so the sweep needs enough
/// chunks that a skewed ingest stream can actually concentrate load — at
/// the scale-derived MEDIUM leaf a tiny lab has ~10 chunks and the whole
/// mutation stream fits inside one average chunk's worth of delta.
pub fn exp8_target_chunk() -> usize {
    32
}

/// The effective per-bucket scan loads of a live index: the physical
/// descriptor count of every final-generation chunk, plus — when delta
/// inserts are still unfolded — one extra bucket for the delta chunk,
/// which *every* query scans in full. Under `Never` the skewed inserts
/// pile up there, which is exactly the hot spot online compaction folds
/// away.
fn exp8_effective_loads(report_loads: &[usize], pending_inserts: usize) -> Vec<usize> {
    let mut loads = report_loads.to_vec();
    if pending_inserts > 0 {
        loads.push(pending_inserts);
    }
    loads
}

/// Regenerates **Experiment 8**: the live-mutation sweep. A skewed
/// (Zipf-anchored) stream of inserts and deletes is merged with the
/// Poisson DQ query timeline and offered to a [`LiveServer`] for every
/// chunker × ingest rate × compaction policy. Every completed query is
/// bit-compared against a solo run on the epoch snapshot it pinned at
/// admission (mutation may change *which* epoch a query sees, never what
/// a pinned epoch computes), the background compactor's chunk-size bound
/// is checked on every installed generation, and the final imbalance
/// factor shows online compaction absorbing the skewed ingest that a
/// never-compacting index accumulates in its delta chunk.
pub fn exp8(lab: &Lab) -> EvalResult<String> {
    let dq = lab.dq()?;
    if dq.is_empty() {
        return Err("exp8 needs a non-empty DQ workload".into());
    }
    let params = SearchParams {
        k: lab.scale.k,
        stop: StopRule::ToCompletionEps(0.5),
        prefetch_depth: 2,
        log_snapshots: false,
    };
    let leaf = exp8_target_chunk();
    let n_ops = (lab.set.len() / 10).clamp(120, 1_500);
    let trigger = (n_ops / 3).max(8);
    let policies = vec![CompactionPolicy::Never, CompactionPolicy::EveryOps(trigger)];
    let chunkers: Vec<(&str, Box<dyn ChunkFormer>)> = vec![
        ("sr-tree", Box::new(SrTreeChunker { leaf_size: leaf })),
        (
            "round-robin",
            Box::new(RoundRobinChunker {
                n_chunks: (lab.set.len() / leaf.max(1)).max(2),
            }),
        ),
    ];

    let cells_dir = lab.results_dir()?.join("exp8-cells");
    let mut t = Table::new(
        &format!(
            "Experiment 8. Serving under live mutation (DQ + {n_ops} skewed ops, \
             target chunk = {leaf}, compaction trigger = {trigger} ops)"
        ),
        &[
            "Chunker",
            "Ingest x",
            "Policy",
            "Queries",
            "Mutations",
            "Compactions",
            "Gen",
            "Epoch",
            "Max chunk",
            "Pending delta",
            "Imbalance",
            "p50 s",
            "p99 s",
            "Compaction s",
            "Pinned-identical",
        ],
    );

    let mut all_identical = true;
    let mut bound_ok = true;
    let mut compaction_ran_everywhere = true;
    // (chunker, multiplier) → final imbalance factor per policy name.
    let mut imbalances: Vec<(String, f64, String, f64)> = Vec::new();

    for (cname, former) in &chunkers {
        let formation = former.form(&lab.set);

        // Serial reference over the pristine generation-0 index: sets the
        // query arrival rate (2× serial capacity) the whole chunker row
        // shares.
        let ref_dir = cells_dir.join(format!("{cname}-ref"));
        std::fs::remove_dir_all(&ref_dir).ok();
        std::fs::create_dir_all(&ref_dir)?;
        let reference = MutableIndex::create(
            &ref_dir,
            "live",
            &lab.set,
            &formation.chunks,
            lab.scale.page_size,
            None,
            lab.model,
            leaf,
        )?;
        let pristine = reference.pin();
        let mut serial_secs = 0.0f64;
        for query in &dq.queries {
            serial_secs += pristine.search(query, &params)?.log.total_virtual.as_secs();
        }
        let query_rate = 2.0 * dq.len() as f64 / serial_secs.max(1e-9);
        let arrivals = poisson_arrivals(dq.len(), query_rate, lab.scale.seed ^ 0xA8);
        let queries: Vec<(Vector, VirtualDuration)> = dq
            .queries
            .iter()
            .zip(arrivals.arrivals.iter())
            .map(|(q, &at)| (*q, VirtualDuration::from_secs(at)))
            .collect();

        for &mult in &exp8_ingest_multipliers() {
            let mtrace = skewed_mutation_trace(
                &lab.set,
                n_ops,
                0.9,
                mult * query_rate,
                1.1,
                lab.scale.seed ^ 0xE8,
            );
            let mutations: Vec<(VirtualDuration, LiveEvent)> = mtrace
                .events
                .iter()
                .map(|e| {
                    let event = match &e.op {
                        MutationOp::Insert { id, vector } => LiveEvent::Insert {
                            id: *id,
                            vector: *vector,
                        },
                        MutationOp::Delete { id } => LiveEvent::Delete { id: *id },
                    };
                    (VirtualDuration::from_secs(e.at_secs), event)
                })
                .collect();
            let trace = merge_timelines(&queries, &mutations);

            for policy in &policies {
                eprintln!("[exp8] {cname} × {mult}× ingest × {} …", policy.name());
                let cell_dir = cells_dir.join(format!("{cname}-x{mult}-{}", policy.name()));
                std::fs::remove_dir_all(&cell_dir).ok();
                std::fs::create_dir_all(&cell_dir)?;
                let index = MutableIndex::create(
                    &cell_dir,
                    "live",
                    &lab.set,
                    &formation.chunks,
                    lab.scale.page_size,
                    None,
                    lab.model,
                    leaf,
                )?;
                let server = LiveServer::new(index, params, *policy);
                let (report, final_index) = server.serve_trace(&trace)?;

                // Every completion must be bit-identical to a solo run on
                // the epoch snapshot it pinned at admission.
                let mut identical = report.completions.len() == dq.len();
                for c in &report.completions {
                    let solo = c.snapshot.search(&c.query, &params)?;
                    identical = identical && results_bit_identical(&solo, &c.result);
                }
                all_identical = all_identical && identical;

                if report.stats.compactions > 0 {
                    bound_ok = bound_ok && report.stats.max_installed_chunk <= 2 * leaf;
                } else if matches!(policy, CompactionPolicy::EveryOps(_)) {
                    compaction_ran_everywhere = false;
                }

                let pending = final_index.pin().delta().inserts.len();
                let loads = exp8_effective_loads(&report.final_chunk_loads, pending);
                let imbalance = imbalance_factor(&loads);
                imbalances.push((format!("{cname}-x{mult}"), mult, policy.name(), imbalance));

                let latencies: Vec<f64> = report
                    .completions
                    .iter()
                    .map(|c| c.latency().as_secs())
                    .collect();
                let lat = LatencySummary::from_secs(&latencies);
                t.row(vec![
                    (*cname).to_string(),
                    fmt_f(mult, 1),
                    policy.name(),
                    report.stats.queries.to_string(),
                    report.stats.mutations.to_string(),
                    report.stats.compactions.to_string(),
                    final_index.generation().to_string(),
                    final_index.epoch().to_string(),
                    report
                        .final_chunk_loads
                        .iter()
                        .max()
                        .copied()
                        .unwrap_or(0)
                        .to_string(),
                    pending.to_string(),
                    fmt_f(imbalance, 3),
                    fmt_f(lat.p50_secs, 3),
                    fmt_f(lat.p99_secs, 3),
                    fmt_f(report.stats.compaction_cost_secs, 3),
                    if identical { "yes" } else { "NO" }.to_string(),
                ]);
            }
        }
    }

    // Per (chunker × rate) pair: the compacting cell must end better
    // balanced than the never-compacting one.
    let mut compaction_reduces = true;
    let pairs: std::collections::BTreeSet<String> =
        imbalances.iter().map(|(k, _, _, _)| k.clone()).collect();
    for pair in &pairs {
        let of = |policy_prefix: &str| {
            imbalances
                .iter()
                .find(|(k, _, p, _)| k == pair && p.starts_with(policy_prefix))
                .map(|(_, _, _, f)| *f)
        };
        if let (Some(never), Some(compacting)) = (of("never"), of("every-")) {
            compaction_reduces = compaction_reduces && compacting < never;
        } else {
            compaction_reduces = false;
        }
    }

    let rendered = t.render();
    let dir = lab.results_dir()?;
    t.save_csv(&dir.join("exp8.csv"))?;
    Ok(format!(
        "{rendered}\n\
         Every served result bit-identical to a solo run on its pinned epoch snapshot: {}.\n\
         Compactor kept every installed chunk within 2x the target size: {}.\n\
         Online compaction ran in every compacting cell and reduced the final imbalance \
         factor vs never-compacting under skewed ingest: {}.\n",
        if all_identical { "yes" } else { "NO" },
        if bound_ok { "yes" } else { "NO" },
        if compaction_ran_everywhere && compaction_reduces {
            "yes"
        } else {
            "NO"
        },
    ))
}

// ---------------------------------------------------------------------------
// Experiment 9 — image-level queries: vote aggregation + early termination
// ---------------------------------------------------------------------------

/// Experiment 9's stability windows for the `StableTop` stop rule.
pub fn exp9_stability_windows() -> Vec<usize> {
    vec![1, 2, 3]
}

/// Experiment 9's image-concurrency levels.
pub fn exp9_concurrency() -> Vec<usize> {
    vec![1, 4]
}

/// Descriptors per image query. Large enough that an early-terminating
/// stop rule has real room to save work (the gate wants ≤ 0.5× the
/// sessions of a full run).
pub fn exp9_per_query() -> usize {
    24
}

/// Regenerates **Experiment 9**: the image-query quality-vs-time sweep.
/// The collection's descriptors are partitioned into images by a
/// Zipf-skewed map; each query is a set of [`exp9_per_query`] descriptors
/// drawn from one source image and served through the
/// [`ImageScheduler`] — one search session per descriptor, most-wanted-
/// chunk fan-out shared across siblings — under every image stop rule ×
/// stability window × concurrency cell. Ground truth is the exact
/// (run-to-completion, every-descriptor) image ranking; the sweep
/// reproduces the paper's "a fraction of the query points suffices"
/// claim at image granularity: an early-terminating cell must reach
/// ≥ 0.95 of the full run's precision@10 while completing ≤ 0.5× the
/// descriptor sessions.
pub fn exp9(lab: &Lab) -> EvalResult<String> {
    let handle = lab.serving_index()?;
    let snap = Snapshot::new(handle.store.clone(), lab.model);
    let m = 10usize;
    // Wide neighbour lists spread each completion's votes across several
    // images, so the tail of the top-10 separates (and stabilises) after
    // a fraction of the descriptor set rather than at the very end.
    let k = lab.scale.k.max(10);
    let n_images = (lab.set.len() / 250).clamp(10, 40);
    let image_of = Arc::new(image_of_map(
        lab.set.len(),
        n_images,
        0.8,
        lab.scale.seed ^ 0xA9,
    ));
    let n_queries = lab.scale.n_queries.max(1);
    let queries = image_queries(
        &lab.set,
        &image_of,
        n_queries,
        exp9_per_query(),
        lab.scale.seed ^ 0x1A9,
    );

    // Ground truth: exact per-descriptor searches, every descriptor spent.
    eprintln!(
        "[exp9] exact image truth over {n_queries} queries × {} descriptors …",
        exp9_per_query()
    );
    let exact = SearchParams::exact(k);
    let mut truths: Vec<Vec<u32>> = Vec::with_capacity(queries.len());
    for q in &queries {
        let (outcome, _) = solo_image_search(&snap, q.image, &q.descriptors, &exact, &image_of)?;
        truths.push(outcome.top_images(m));
    }

    // The serving sweep runs each descriptor under the approximate stop
    // the quality-vs-time experiments use.
    let params = SearchParams {
        k,
        stop: StopRule::ToCompletionEps(0.5),
        prefetch_depth: 2,
        log_snapshots: false,
    };
    // Solo reference under the same per-descriptor params: the answer the
    // run-to-completion cells must reproduce bit for bit.
    let mut solo = Vec::with_capacity(queries.len());
    for q in &queries {
        solo.push(solo_image_search(&snap, q.image, &q.descriptors, &params, &image_of)?.0);
    }

    // The stop rules watch a *head* prefix (top-3): the tail of a vote
    // ranking churns until almost every descriptor is spent, but the head
    // settles after a fraction of them — exactly the paper's trade-off.
    // Quality is still measured over the full top-10.
    let stop_m = 3usize;
    let mut stops = vec![ImageStopRule::RunAll];
    for window in exp9_stability_windows() {
        stops.push(ImageStopRule::StableTop { m: stop_m, window });
    }
    stops.push(ImageStopRule::CertifiedTop { m: stop_m });

    let trace: Vec<(ImageQuerySpec, VirtualDuration)> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            (
                ImageQuerySpec {
                    label: q.image,
                    descriptors: q.descriptors.clone(),
                },
                VirtualDuration::from_ms(i as f64),
            )
        })
        .collect();

    let mut t = Table::new(
        &format!(
            "Experiment 9. Image-level queries ({n_queries} queries × {} descriptors, \
             {n_images} images, k = {k}, precision@{m} vs the exact image ranking)",
            exp9_per_query(),
        ),
        &[
            "Stop rule",
            "Active",
            "Spent",
            "Abandoned",
            "Spent frac",
            "Precision",
            "Rel precision",
            "Cert rate",
            "Thru q/s",
            "p50 s",
            "Fetches",
            "Accounting",
        ],
    );
    let mut spent_curve = Table::new(
        "Experiment 9 descriptors-spent curves",
        &[
            "Stop rule",
            "Active",
            "completions",
            "mean_precision",
            "queries_live",
        ],
    );

    let mut all_identical = true;
    let mut accounting_exact = true;
    // (stop label, active, spent, precision) per cell, for the gate.
    let mut cells: Vec<(String, usize, u64, f64)> = Vec::new();

    for &active in &exp9_concurrency() {
        for &stop in &stops {
            eprintln!("[exp9] {} × {active} active …", stop.label());
            let mut config = ImageConfig::new(Policy::MostWantedChunk, active, stop);
            config.max_queued = queries.len();
            let report = ImageScheduler::new(snap.clone(), config, Arc::clone(&image_of))
                .serve_trace(&trace, &params)?;

            let outcomes: Vec<&eff2_core::image::ImageOutcome> =
                report.completions.iter().map(|c| &c.outcome).collect();
            let mut precision = 0.0f64;
            let mut certified = 0usize;
            for c in &report.completions {
                let o = &c.outcome;
                accounting_exact = accounting_exact
                    && o.descriptors_spent + o.descriptors_abandoned == o.descriptors_total;
                let truth = &truths[c.id as usize];
                precision += image_precision_at(&o.top_images(m), truth, m);
                if o.certificate {
                    certified += 1;
                }
                if matches!(stop, ImageStopRule::RunAll) {
                    let want = &solo[c.id as usize];
                    let same = want.ranking.len() == o.ranking.len()
                        && want.ranking.iter().zip(o.ranking.iter()).all(|(w, g)| {
                            w.image == g.image
                                && w.votes == g.votes
                                && w.best_dist.to_bits() == g.best_dist.to_bits()
                        });
                    all_identical = all_identical && same;
                }
            }
            let nq = report.completions.len().max(1);
            precision /= nq as f64;
            let cert_rate = certified as f64 / nq as f64;
            let spent_frac = avg_spent_fraction(&outcomes);
            cells.push((
                stop.label(),
                active,
                report.stats.descriptors_spent,
                precision,
            ));
            // The RunAll cell leads each concurrency level, so the full-run
            // reference is always in `cells` by the time any cell needs it
            // (for RunAll itself this is a self-comparison: rel = 1).
            let rel = cells
                .iter()
                .find(|(label, a, _, _)| label == "run-all" && *a == active)
                .map_or(
                    1.0,
                    |(_, _, _, full)| {
                        if *full > 0.0 {
                            precision / full
                        } else {
                            1.0
                        }
                    },
                );

            for point in descriptors_spent_curve(&outcomes, &truths, m) {
                spent_curve.row(vec![
                    stop.label(),
                    active.to_string(),
                    point.completions.to_string(),
                    fmt_f(point.avg_precision, 4),
                    point.queries_live.to_string(),
                ]);
            }

            let latencies: Vec<f64> = report
                .completions
                .iter()
                .map(|c| c.latency().as_secs())
                .collect();
            let lat = LatencySummary::from_secs(&latencies);
            t.row(vec![
                stop.label(),
                active.to_string(),
                report.stats.descriptors_spent.to_string(),
                report.stats.descriptors_abandoned.to_string(),
                fmt_f(spent_frac, 3),
                fmt_f(precision, 3),
                fmt_f(rel, 3),
                fmt_f(cert_rate, 2),
                fmt_f(report.throughput_qps(), 1),
                fmt_f(lat.p50_secs, 3),
                report.stats.fetches.to_string(),
                if accounting_exact { "exact" } else { "BROKEN" }.to_string(),
            ]);
        }
    }

    // The quality-vs-time gate: some early-terminating cell must hold
    // ≥ 95 % of its concurrency level's full-run precision while
    // completing at most half the descriptor sessions.
    let full_of = |active: usize| {
        cells
            .iter()
            .find(|(label, a, _, _)| label == "run-all" && *a == active)
            .map(|(_, _, spent, precision)| (*spent, *precision))
    };
    let mut gate_hit: Option<(String, usize, f64, f64)> = None;
    for (label, active, spent, precision) in &cells {
        let Some((full_spent, full_precision)) = full_of(*active) else {
            continue;
        };
        let rel = if full_precision > 0.0 {
            precision / full_precision
        } else {
            1.0
        };
        let ratio = *spent as f64 / full_spent.max(1) as f64;
        if label != "run-all" && rel >= 0.95 && ratio <= 0.5 {
            let better = gate_hit
                .as_ref()
                .is_none_or(|(_, _, _, best_ratio)| ratio < *best_ratio);
            if better {
                gate_hit = Some((label.clone(), *active, rel, ratio));
            }
        }
    }

    let rendered = t.render();
    let dir = lab.results_dir()?;
    t.save_csv(&dir.join("exp9.csv"))?;
    spent_curve.save_csv(&dir.join("exp9_spent.csv"))?;

    let mut out = format!(
        "{rendered}\nRun-to-completion cells bit-identical to the solo image reference: {}.\n\
         Descriptor accounting exact in every cell: {}.\n",
        if all_identical { "yes" } else { "NO" },
        if accounting_exact { "yes" } else { "NO" },
    );
    match &gate_hit {
        Some((label, active, rel, ratio)) => out.push_str(&format!(
            "Best early-stop cell: {label} at {active} active — {rel:.3} of full-run \
             precision@{m} using {ratio:.2}x the descriptor sessions.\n\
             An early-terminating cell reached >=0.95 of full-run precision@{m} at <=0.5x \
             the descriptor sessions: yes.\n"
        )),
        None => out.push_str(&format!(
            "An early-terminating cell reached >=0.95 of full-run precision@{m} at <=0.5x \
             the descriptor sessions: NO.\n"
        )),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    fn tiny_lab(tag: &str) -> Lab {
        let mut scale = Scale::new(2_500);
        scale.n_queries = 6;
        scale.k = 5;
        let dir = std::env::temp_dir().join(format!("eff2_exp_{tag}"));
        Lab::prepare(scale, &dir).expect("prepare")
    }

    #[test]
    fn sweep_marks_respect_k() {
        assert_eq!(sweep_neighbor_marks(30), vec![1, 10, 20, 25, 28, 30]);
        assert_eq!(sweep_neighbor_marks(5), vec![1, 5]);
        assert_eq!(sweep_neighbor_marks(1), vec![1]);
    }

    #[test]
    fn table1_and_fig1_render() {
        let lab = tiny_lab("t1");
        let t1 = table1(&lab).expect("table1");
        assert!(t1.contains("SMALL") && t1.contains("LARGE"));
        assert!(t1.contains("BAG"));
        let f1 = fig1(&lab).expect("fig1");
        assert!(f1.lines().count() > 30);
        assert!(lab.results_dir().unwrap().join("table1.csv").exists());
        assert!(lab.results_dir().unwrap().join("fig1.csv").exists());
    }

    #[test]
    fn exp3_smoke() {
        let lab = tiny_lab("e3");
        let report = exp3(&lab).expect("exp3");
        assert!(report.contains("Experiment 3"));
        assert!(report.contains("completion"), "missing the exact rule row");
        assert!(
            report.contains("One scan per query answered all 9 rules"),
            "missing the shared-scan summary"
        );
        assert!(lab.results_dir().unwrap().join("exp3.csv").exists());
        // The single scan must be strictly cheaper than per-rule re-runs:
        // the ladder contains rules of different depths.
        let summary = report
            .lines()
            .rev()
            .find(|l| l.contains("One scan"))
            .expect("summary line");
        let nums: Vec<usize> = summary
            .split(|c: char| !c.is_ascii_digit())
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().unwrap())
            .collect();
        // nums = [9, shared, individual] from the summary sentence.
        assert_eq!(nums[0], 9);
        assert!(nums[1] < nums[2], "shared scan should read fewer chunks");
    }

    #[test]
    fn exp4_smoke() {
        let lab = tiny_lab("e4");
        let report = exp4(&lab).expect("exp4");
        assert!(report.contains("Experiment 4"));
        assert!(
            report.contains("bit-identical to serial under every policy: yes"),
            "scheduling changed an answer:\n{report}"
        );
        assert!(lab.results_dir().unwrap().join("exp4.csv").exists());
        assert!(lab.results_dir().unwrap().join("exp4_quality.csv").exists());
        // At the highest concurrency level, co-scheduling sessions that
        // want the same chunk must read strictly fewer chunks than
        // round-robin.
        let top = *exp4_concurrency().last().unwrap();
        let summary = report
            .lines()
            .find(|l| l.starts_with(&format!("At {top} concurrent sessions")))
            .expect("sharing summary line");
        let nums: Vec<u64> = summary
            .split(|c: char| !c.is_ascii_digit())
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().unwrap())
            .collect();
        // nums = [top, mwc_fetches, fair_fetches, percent_saved].
        assert_eq!(nums[0] as usize, top);
        assert!(
            nums[1] < nums[2],
            "most-wanted-chunk should fetch strictly fewer chunks: {summary}"
        );
    }

    #[test]
    fn exp5_smoke() {
        let lab = tiny_lab("e5");
        let report = exp5(&lab).expect("exp5");
        assert!(report.contains("Experiment 5"));
        assert!(
            report.contains("Rate-0 chaos stack bit-identical to the undecorated search: yes"),
            "rate-0 decoration changed an answer:\n{report}"
        );
        assert!(
            report.contains("All faulted searches completed with degradation reports: yes"),
            "a faulted search aborted or lied about its losses:\n{report}"
        );
        assert!(
            report.contains("Precision monotonically non-increasing in fault rate: yes"),
            "quality rose with the fault rate:\n{report}"
        );
        assert!(lab.results_dir().unwrap().join("exp5.csv").exists());
    }

    #[test]
    fn exp6_smoke() {
        let lab = tiny_lab("e6");
        let report = exp6(&lab).expect("exp6");
        assert!(report.contains("Experiment 6"));
        assert!(
            report.contains(
                "Rerank tail bit-identical to the uncompressed baseline at full budget: yes"
            ),
            "full-budget rerank tail changed an answer:\n{report}"
        );
        assert!(
            report.contains("Precision monotonically non-decreasing in rerank depth: yes"),
            "deeper rerank pools lost quality:\n{report}"
        );
        assert!(
            report.contains("Neighbor ids unchanged under two-level ranking: yes"),
            "two-level ranking changed an answer:\n{report}"
        );
        assert!(
            report.contains("v2 and v3 chunk files read-compatible: yes"),
            "the v3 raw region diverged from the v2 layout:\n{report}"
        );
        assert!(lab.results_dir().unwrap().join("exp6.csv").exists());
    }

    #[test]
    fn exp7_smoke() {
        let lab = tiny_lab("e7");
        let report = exp7(&lab).expect("exp7");
        assert!(report.contains("Experiment 7"));
        assert!(
            report.contains("All merged fleet answers bit-identical to solo under every cell: yes"),
            "sharding changed an answer:\n{report}"
        );
        assert!(
            report.contains("Imbalance factor populated for both placements in every cell: yes"),
            "a placement cell reported no imbalance factor:\n{report}"
        );
        assert!(
            report.contains("Replication masked permanent chunk loss as failover: yes"),
            "replication failed to mask a permanent chunk loss:\n{report}"
        );
        assert!(lab.results_dir().unwrap().join("exp7.csv").exists());
        assert!(lab
            .results_dir()
            .unwrap()
            .join("exp7_failover.csv")
            .exists());
    }

    #[test]
    fn exp8_smoke() {
        let lab = tiny_lab("e8");
        let report = exp8(&lab).expect("exp8");
        assert!(report.contains("Experiment 8"));
        assert!(
            report.contains(
                "Every served result bit-identical to a solo run on its pinned epoch snapshot: yes"
            ),
            "mutation changed a pinned answer:\n{report}"
        );
        assert!(
            report.contains("Compactor kept every installed chunk within 2x the target size: yes"),
            "a compaction installed an oversized chunk:\n{report}"
        );
        assert!(
            report.contains(
                "Online compaction ran in every compacting cell and reduced the final \
                 imbalance factor vs never-compacting under skewed ingest: yes"
            ),
            "compaction failed to rebalance the skewed ingest:\n{report}"
        );
        assert!(lab.results_dir().unwrap().join("exp8.csv").exists());
    }

    #[test]
    fn exp9_smoke() {
        let lab = tiny_lab("e9");
        let report = exp9(&lab).expect("exp9");
        assert!(report.contains("Experiment 9"));
        assert!(
            report
                .contains("Run-to-completion cells bit-identical to the solo image reference: yes"),
            "interleaving changed an image ranking:\n{report}"
        );
        assert!(
            report.contains("Descriptor accounting exact in every cell: yes"),
            "a descriptor session went unaccounted:\n{report}"
        );
        assert!(
            report.contains(
                "An early-terminating cell reached >=0.95 of full-run precision@10 at <=0.5x \
                 the descriptor sessions: yes"
            ),
            "no early-stop cell met the quality-vs-time gate:\n{report}"
        );
        assert!(lab.results_dir().unwrap().join("exp9.csv").exists());
        assert!(lab.results_dir().unwrap().join("exp9_spent.csv").exists());
    }

    #[test]
    fn exp1_smoke() {
        let lab = tiny_lab("e1");
        let report = exp1(&lab).expect("exp1");
        for fig in ["Figure 2", "Figure 3", "Figure 4", "Figure 5", "Table 2"] {
            assert!(report.contains(fig), "missing {fig}");
        }
        for f in ["fig2.csv", "fig3.csv", "fig4.csv", "fig5.csv", "table2.csv"] {
            assert!(lab.results_dir().unwrap().join(f).exists(), "missing {f}");
        }
    }
}
