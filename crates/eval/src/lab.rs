//! The experiment laboratory: builds (and caches on disk) the collection,
//! the six chunk indexes, the workloads, the ground truths and the quality
//! curves that the individual experiments consume.
//!
//! Everything is keyed by `(scale, seed)` under `<out>/cache/…`, so
//! re-running an experiment binary reuses all prior artefacts — in
//! particular the BAG clustering, which is by far the most expensive step
//! (the paper needed 12 days for its 5 M collection; at the default
//! 200 k scale the grid-accelerated run takes minutes).
// lint:allow-file(panic.index): artefact tables are sized by the lab pipeline that indexes them

use crate::scale::Scale;
use crate::EvalResult;
use eff2_bag::{Bag, BagConfig, BagSnapshot};
use eff2_core::chunkers::{ChunkFormer, SrTreeChunker};
use eff2_descriptor::{codec, Codec, DescriptorSet, PqCodec, Sq8Codec, SyntheticCollection};
use eff2_json::Json;
use eff2_metrics::{quality_curve, GroundTruth, QualityCurve};
use eff2_storage::diskmodel::DiskModel;
use eff2_storage::{ChunkDef, ChunkStore};
use eff2_workload::{dq_workload, sq_workload, Workload};
use std::path::{Path, PathBuf};

/// The three chunk-size classes of the paper's Table 1.
pub const SIZE_CLASSES: [&str; 3] = ["SMALL", "MEDIUM", "LARGE"];

/// Cache format version: bump whenever the generator, the chunk formers or
/// the cost model change in a way that invalidates cached artefacts.
/// v3: chunk files grew per-chunk checksums (format v2), so older cached
/// stores no longer open.
pub const CACHE_VERSION: u32 = 3;

/// Metadata recorded for every built index (Table 1's raw material).
#[derive(Clone, Debug)]
pub struct IndexMeta {
    /// Display label, e.g. "BAG / SMALL".
    pub label: String,
    /// Strategy description.
    pub strategy: String,
    /// Descriptors offered to the former.
    pub total_input: usize,
    /// Descriptors placed in chunks.
    pub retained: usize,
    /// Descriptors discarded as outliers.
    pub discarded: usize,
    /// Number of chunks.
    pub n_chunks: usize,
    /// Mean descriptors per chunk.
    pub mean_chunk_size: f64,
    /// The 30 largest chunk sizes, descending (Fig. 1).
    pub largest_sizes: Vec<usize>,
    /// Formation cost in distance-op equivalents.
    pub distance_ops: u64,
    /// Formation passes / rounds.
    pub rounds: u64,
    /// Real wall-clock seconds spent forming chunks and writing files.
    pub build_wall_secs: f64,
}

impl IndexMeta {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", Json::Str(self.label.clone())),
            ("strategy", Json::Str(self.strategy.clone())),
            ("total_input", Json::from_usize(self.total_input)),
            ("retained", Json::from_usize(self.retained)),
            ("discarded", Json::from_usize(self.discarded)),
            ("n_chunks", Json::from_usize(self.n_chunks)),
            ("mean_chunk_size", Json::num(self.mean_chunk_size)),
            (
                "largest_sizes",
                Json::Arr(
                    self.largest_sizes
                        .iter()
                        .map(|&s| Json::from_usize(s))
                        .collect(),
                ),
            ),
            ("distance_ops", Json::num(self.distance_ops as f64)),
            ("rounds", Json::num(self.rounds as f64)),
            ("build_wall_secs", Json::num(self.build_wall_secs)),
        ])
    }

    fn from_json(json: &Json) -> eff2_json::Result<IndexMeta> {
        Ok(IndexMeta {
            label: json.field("label")?.as_str()?.to_string(),
            strategy: json.field("strategy")?.as_str()?.to_string(),
            total_input: json.field("total_input")?.as_usize()?,
            retained: json.field("retained")?.as_usize()?,
            discarded: json.field("discarded")?.as_usize()?,
            n_chunks: json.field("n_chunks")?.as_usize()?,
            mean_chunk_size: json.field("mean_chunk_size")?.as_f64()?,
            largest_sizes: json.field("largest_sizes")?.to_usize_vec()?,
            distance_ops: json.field("distance_ops")?.as_u64()?,
            rounds: json.field("rounds")?.as_u64()?,
            build_wall_secs: json.field("build_wall_secs")?.as_f64()?,
        })
    }
}

/// A built index: its store plus metadata.
#[derive(Debug)]
pub struct IndexHandle {
    /// Metadata.
    pub meta: IndexMeta,
    /// The opened store.
    pub store: ChunkStore,
}

impl IndexHandle {
    /// Filesystem-safe name derived from the label.
    pub fn file_name(&self) -> String {
        file_name_of(&self.meta.label)
    }
}

fn file_name_of(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// The experiment context.
pub struct Lab {
    /// Scale parameters.
    pub scale: Scale,
    /// Root output directory.
    pub out_dir: PathBuf,
    /// Cache directory (scale-keyed).
    pub cache_dir: PathBuf,
    /// The synthetic collection.
    pub set: DescriptorSet,
    /// The cost model timings are reported under.
    pub model: DiskModel,
}

impl Lab {
    /// Prepares the lab: loads the cached collection for this scale or
    /// generates and persists it.
    pub fn prepare(scale: Scale, out_dir: &Path) -> EvalResult<Lab> {
        let cache_dir = out_dir.join(format!(
            "cache/v{}-n{}-seed{}",
            CACHE_VERSION, scale.n_descriptors, scale.seed
        ));
        std::fs::create_dir_all(&cache_dir)?;
        let coll_path = cache_dir.join("collection.eff2");
        let set = if coll_path.exists() {
            codec::load_collection(&coll_path)?
        } else {
            let c = SyntheticCollection::with_size(scale.n_descriptors, scale.seed);
            codec::save_collection(&c.set, &coll_path)?;
            c.set
        };
        Ok(Lab {
            scale,
            out_dir: out_dir.to_path_buf(),
            cache_dir,
            set,
            model: DiskModel::ata_2005(),
        })
    }

    fn index_paths(&self, label: &str) -> (PathBuf, PathBuf, PathBuf) {
        let base = file_name_of(label);
        (
            self.cache_dir.join(format!("{base}.chunks")),
            self.cache_dir.join(format!("{base}.index")),
            self.cache_dir.join(format!("{base}.meta.json")),
        )
    }

    fn try_open(&self, label: &str) -> Option<IndexHandle> {
        let (chunks, index, meta) = self.index_paths(label);
        if chunks.exists() && index.exists() && meta.exists() {
            let meta =
                IndexMeta::from_json(&Json::parse(&std::fs::read_to_string(meta).ok()?).ok()?)
                    .ok()?;
            let store = ChunkStore::open(&chunks, &index).ok()?;
            Some(IndexHandle { meta, store })
        } else {
            None
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn persist(
        &self,
        label: &str,
        strategy: &str,
        set: &DescriptorSet,
        chunks: &[ChunkDef],
        outliers: usize,
        distance_ops: u64,
        rounds: u64,
        build_wall_secs: f64,
        quant: Option<&Codec>,
    ) -> EvalResult<IndexHandle> {
        let store = match quant {
            None => ChunkStore::create(
                &self.cache_dir,
                &file_name_of(label),
                set,
                chunks,
                self.scale.page_size,
            )?,
            Some(codec) => ChunkStore::create_quantized(
                &self.cache_dir,
                &file_name_of(label),
                set,
                chunks,
                self.scale.page_size,
                codec,
            )?,
        };
        let retained = chunks.iter().map(|c| c.positions.len()).sum::<usize>();
        let mut sizes: Vec<usize> = chunks.iter().map(|c| c.positions.len()).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes.truncate(30);
        let meta = IndexMeta {
            label: label.to_string(),
            strategy: strategy.to_string(),
            total_input: retained + outliers,
            retained,
            discarded: outliers,
            n_chunks: chunks.len(),
            mean_chunk_size: if chunks.is_empty() {
                0.0
            } else {
                retained as f64 / chunks.len() as f64
            },
            largest_sizes: sizes,
            distance_ops,
            rounds,
            build_wall_secs,
        };
        let (_, _, meta_path) = self.index_paths(label);
        std::fs::write(&meta_path, meta.to_json().to_string())?;
        Ok(IndexHandle { meta, store })
    }

    /// Builds (or opens from cache) the paper's six chunk indexes:
    /// BAG SMALL/MEDIUM/LARGE from one clustering run with checkpoints, and
    /// SR SMALL/MEDIUM/LARGE over each BAG index's retained descriptors
    /// with leaf size equal to that BAG index's mean chunk size — exactly
    /// the Table 1 construction.
    pub fn six_indexes(&self) -> EvalResult<Vec<IndexHandle>> {
        let labels: Vec<String> = SIZE_CLASSES
            .iter()
            .flat_map(|c| [format!("BAG / {c}"), format!("SR / {c}")])
            .collect();
        if let Some(handles) = labels
            .iter()
            .map(|l| self.try_open(l))
            .collect::<Option<Vec<_>>>()
        {
            return Ok(handles);
        }

        // One BAG run, checkpointed at the three targets (descending:
        // SMALL has the most clusters).
        let targets = self.scale.bag_targets();
        // A deliberately small MPI (an eighth of the median NN distance):
        // dense regions coalesce over many passes before sparse ones, which
        // is what gives BAG its giant head clusters at every checkpoint and
        // leaves the sparse tail as outliers — at the price of formation
        // time, exactly the paper's trade-off.
        let mpi = BagConfig::estimate_mpi(&self.set, 2_000, self.scale.seed) * 0.25;
        let cfg = BagConfig {
            mpi,
            max_passes: 500,
            ..BagConfig::default()
        };
        // lint:allow(det.wall_clock): measures real formation cost, reported as wall seconds next to the virtual figures
        let wall = std::time::Instant::now();
        let mut bag = Bag::new(&self.set, cfg);
        let snaps = bag.run_with_checkpoints(&[targets[0], targets[1], targets[2]]);
        let bag_wall = wall.elapsed().as_secs_f64();

        let mut handles = Vec::with_capacity(6);
        for (class, snap) in SIZE_CLASSES.iter().zip(snaps.iter()) {
            handles.push(self.build_bag_index(class, snap, bag_wall / 3.0)?);
            handles.push(self.build_sr_index(class, snap)?);
        }
        // Order: BAG/S, SR/S, BAG/M, SR/M, BAG/L, SR/L — matches `labels`.
        Ok(handles)
    }

    fn build_bag_index(
        &self,
        class: &str,
        snap: &BagSnapshot,
        wall: f64,
    ) -> EvalResult<IndexHandle> {
        let label = format!("BAG / {class}");
        let chunks: Vec<ChunkDef> = snap
            .clusters
            .iter()
            .map(|c| ChunkDef {
                positions: c.members.clone(),
                centroid: c.centroid,
                radius: c.tight_radius,
            })
            .collect();
        self.persist(
            &label,
            "BAG clustering",
            &self.set,
            &chunks,
            snap.outliers.len(),
            snap.exhaustive_equivalent_tests,
            snap.passes as u64,
            wall,
            None,
        )
    }

    fn build_sr_index(&self, class: &str, snap: &BagSnapshot) -> EvalResult<IndexHandle> {
        let label = format!("SR / {class}");
        // The paper builds the SR-tree over the outlier-free collection of
        // the matching BAG index, with leaves sized to BAG's average.
        let retained: Vec<usize> = {
            let mut positions: Vec<u32> = snap
                .clusters
                .iter()
                .flat_map(|c| c.members.iter().copied())
                .collect();
            positions.sort_unstable();
            positions.into_iter().map(|p| p as usize).collect()
        };
        let subset = self.set.subset(&retained);
        let leaf = snap.mean_cluster_size().round().max(2.0) as usize;
        // lint:allow(det.wall_clock): measures real formation cost, reported as wall seconds next to the virtual figures
        let wall = std::time::Instant::now();
        let formation = SrTreeChunker { leaf_size: leaf }.form(&subset);
        self.persist(
            &label,
            &format!("SR-tree static build (leaf = {leaf})"),
            &subset,
            &formation.chunks,
            snap.outliers.len(), // same outliers were removed up front
            formation.cost.distance_ops,
            formation.cost.rounds,
            wall.elapsed().as_secs_f64(),
            None,
        )
    }

    /// Builds (or opens) the SR-tree index of the Figure 6/7 sweep with the
    /// given leaf size, over the SMALL-class outlier-free collection.
    pub fn sweep_index(&self, subset: &DescriptorSet, leaf_size: usize) -> EvalResult<IndexHandle> {
        let label = format!("SWEEP / {leaf_size}");
        if let Some(h) = self.try_open(&label) {
            return Ok(h);
        }
        // lint:allow(det.wall_clock): measures real formation cost, reported as wall seconds next to the virtual figures
        let wall = std::time::Instant::now();
        let formation = SrTreeChunker { leaf_size }.form(subset);
        self.persist(
            &label,
            &format!("SR-tree static build (leaf = {leaf_size})"),
            subset,
            &formation.chunks,
            0,
            formation.cost.distance_ops,
            formation.cost.rounds,
            wall.elapsed().as_secs_f64(),
            None,
        )
    }

    /// Builds (or opens) the serving-experiment index: an SR-tree over the
    /// full collection with the MEDIUM-class leaf size. Experiment 4 runs
    /// on this rather than the Table 1 indexes so the serving sweep does
    /// not pay for (or depend on the degeneracies of) a BAG clustering
    /// run.
    pub fn serving_index(&self) -> EvalResult<IndexHandle> {
        let leaf = self.scale.chunk_sizes()[1];
        let label = format!("SERVE / {leaf}");
        if let Some(h) = self.try_open(&label) {
            return Ok(h);
        }
        // lint:allow(det.wall_clock): measures real formation cost, reported as wall seconds next to the virtual figures
        let wall = std::time::Instant::now();
        let formation = SrTreeChunker { leaf_size: leaf }.form(&self.set);
        self.persist(
            &label,
            &format!("SR-tree static build (leaf = {leaf})"),
            &self.set,
            &formation.chunks,
            0,
            formation.cost.distance_ops,
            formation.cost.rounds,
            wall.elapsed().as_secs_f64(),
            None,
        )
    }

    /// Builds (or opens) the quantized twin of the serving index: the same
    /// SR-tree formation (MEDIUM-class leaves over the full collection),
    /// persisted as a format-v3 chunk file carrying `codec_name`-compressed
    /// codes next to the raw descriptors. Experiment 6 runs ADC scans over
    /// these and compares against the uncompressed
    /// [`serving_index`](Self::serving_index).
    pub fn quantized_index(&self, codec_name: &str) -> EvalResult<IndexHandle> {
        let leaf = self.scale.chunk_sizes()[1];
        let label = format!("QUANT {} / {leaf}", codec_name.to_ascii_uppercase());
        if let Some(h) = self.try_open(&label) {
            return Ok(h);
        }
        let quant = match codec_name {
            "sq8" => Codec::Sq8(Sq8Codec::from_set(&self.set)),
            "pq" => Codec::Pq(PqCodec::from_set(&self.set)),
            other => return Err(format!("unknown codec {other:?} (want sq8 or pq)").into()),
        };
        // lint:allow(det.wall_clock): measures real formation cost, reported as wall seconds next to the virtual figures
        let wall = std::time::Instant::now();
        let formation = SrTreeChunker { leaf_size: leaf }.form(&self.set);
        self.persist(
            &label,
            &format!("SR-tree static build (leaf = {leaf}) + {codec_name} codes"),
            &self.set,
            &formation.chunks,
            0,
            formation.cost.distance_ops,
            formation.cost.rounds,
            wall.elapsed().as_secs_f64(),
            Some(&quant),
        )
    }

    /// Builds (or opens) the second chaos-experiment index: an SR-tree
    /// over the full collection with the SMALL-class leaf size, so
    /// experiment 5 sweeps fault rates over two chunk granularities
    /// (losing one small chunk costs fewer descriptors than losing one
    /// medium chunk — the loss curve depends on the chunker).
    pub fn chaos_index(&self) -> EvalResult<IndexHandle> {
        let leaf = self.scale.chunk_sizes()[0];
        let label = format!("CHAOS / {leaf}");
        if let Some(h) = self.try_open(&label) {
            return Ok(h);
        }
        // lint:allow(det.wall_clock): measures real formation cost, reported as wall seconds next to the virtual figures
        let wall = std::time::Instant::now();
        let formation = SrTreeChunker { leaf_size: leaf }.form(&self.set);
        self.persist(
            &label,
            &format!("SR-tree static build (leaf = {leaf})"),
            &self.set,
            &formation.chunks,
            0,
            formation.cost.distance_ops,
            formation.cost.rounds,
            wall.elapsed().as_secs_f64(),
            None,
        )
    }

    /// The outlier-free collection of the SMALL class (what the paper's
    /// Experiment 2 sweeps over: "the collection of 4,471,532
    /// descriptors").
    pub fn small_retained_subset(&self, six: &[IndexHandle]) -> EvalResult<DescriptorSet> {
        // Recover the retained set from the BAG/SMALL store (ids are dense
        // positions in the synthetic collection).
        let bag_small = six
            .iter()
            .find(|h| h.meta.label == "BAG / SMALL")
            .ok_or("BAG / SMALL index missing")?;
        let mut reader = bag_small.store.reader()?;
        let mut payload = eff2_storage::ChunkData::default();
        let mut positions = Vec::with_capacity(bag_small.meta.retained);
        for i in 0..bag_small.store.n_chunks() {
            reader.read_chunk(i, &mut payload)?;
            positions.extend(payload.ids.iter().map(|&id| id as usize));
        }
        positions.sort_unstable();
        Ok(self.set.subset(&positions))
    }

    /// The DQ workload (cached).
    pub fn dq(&self) -> EvalResult<Workload> {
        let path = self
            .cache_dir
            .join(format!("dq-{}.json", self.scale.n_queries));
        if path.exists() {
            return Ok(Workload::load(&path)?);
        }
        let w = dq_workload(&self.set, self.scale.n_queries, self.scale.seed ^ 0xD0);
        w.save(&path)?;
        Ok(w)
    }

    /// The SQ workload (cached).
    pub fn sq(&self) -> EvalResult<Workload> {
        let path = self
            .cache_dir
            .join(format!("sq-{}.json", self.scale.n_queries));
        if path.exists() {
            return Ok(Workload::load(&path)?);
        }
        let w = sq_workload(
            &self.set,
            self.scale.n_queries,
            0.05,
            self.scale.seed ^ 0x50,
        );
        w.save(&path)?;
        Ok(w)
    }

    /// Ground truth of `workload` against `handle` (cached).
    pub fn truth(&self, handle: &IndexHandle, workload: &Workload) -> EvalResult<GroundTruth> {
        let path = self.cache_dir.join(format!(
            "truth-{}-{}-k{}-q{}.json",
            handle.file_name(),
            workload.name.to_lowercase(),
            self.scale.k,
            workload.len()
        ));
        if path.exists() {
            return Ok(GroundTruth::load(&path)?);
        }
        let t = GroundTruth::compute(&handle.store, workload, self.scale.k)?;
        t.save(&path)?;
        Ok(t)
    }

    /// The quality-vs-time curve of `workload` against `handle` (cached).
    pub fn curve(&self, handle: &IndexHandle, workload: &Workload) -> EvalResult<QualityCurve> {
        let path = self.cache_dir.join(format!(
            "curve-{}-{}-k{}-q{}.json",
            handle.file_name(),
            workload.name.to_lowercase(),
            self.scale.k,
            workload.len()
        ));
        if path.exists() {
            let json = Json::parse(&std::fs::read_to_string(&path)?)?;
            return Ok(QualityCurve::from_json(&json)?);
        }
        let truth = self.truth(handle, workload)?;
        let curve = quality_curve(
            &handle.store,
            &self.model,
            workload,
            &truth,
            self.scale.k,
            &handle.meta.label,
        )?;
        std::fs::write(&path, curve.to_json().to_string())?;
        Ok(curve)
    }

    /// Directory where experiment outputs (tables, CSVs) are written.
    pub fn results_dir(&self) -> EvalResult<PathBuf> {
        let dir = self.out_dir.join(format!(
            "n{}-seed{}",
            self.scale.n_descriptors, self.scale.seed
        ));
        std::fs::create_dir_all(&dir)?;
        Ok(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_lab(tag: &str) -> Lab {
        let mut scale = Scale::new(3_000);
        scale.n_queries = 8;
        scale.k = 5;
        let dir = std::env::temp_dir().join(format!("eff2_lab_{tag}"));
        Lab::prepare(scale, &dir).expect("prepare")
    }

    #[test]
    fn collection_is_cached() {
        let lab = tiny_lab("cache");
        let n1 = lab.set.len();
        let lab2 = Lab::prepare(lab.scale, &lab.out_dir).expect("prepare again");
        assert_eq!(lab2.set.len(), n1);
        assert_eq!(lab2.set.get(0), lab.set.get(0));
    }

    #[test]
    fn workloads_are_cached_and_sized() {
        let lab = tiny_lab("wl");
        let dq = lab.dq().expect("dq");
        assert_eq!(dq.len(), 8);
        let dq2 = lab.dq().expect("dq cached");
        assert_eq!(dq, dq2);
        let sq = lab.sq().expect("sq");
        assert_eq!(sq.len(), 8);
        assert_eq!(sq.name, "SQ");
    }

    #[test]
    fn six_indexes_build_and_reopen() {
        let lab = tiny_lab("six");
        let six = lab.six_indexes().expect("build");
        assert_eq!(six.len(), 6);
        let labels: Vec<&str> = six.iter().map(|h| h.meta.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "BAG / SMALL",
                "SR / SMALL",
                "BAG / MEDIUM",
                "SR / MEDIUM",
                "BAG / LARGE",
                "SR / LARGE"
            ]
        );
        // Paired BAG/SR indexes hold the same retained descriptors.
        for pair in six.chunks(2) {
            assert_eq!(pair[0].meta.retained, pair[1].meta.retained);
            assert_eq!(pair[0].meta.discarded, pair[1].meta.discarded);
        }
        // Second call must come from cache (fast) and agree.
        let again = lab.six_indexes().expect("reopen");
        for (a, b) in six.iter().zip(again.iter()) {
            assert_eq!(a.meta.label, b.meta.label);
            assert_eq!(a.meta.n_chunks, b.meta.n_chunks);
            assert_eq!(a.store.total_descriptors(), b.store.total_descriptors());
        }
    }

    #[test]
    fn quantized_index_builds_and_reopens() {
        let lab = tiny_lab("quant");
        let h = lab.quantized_index("sq8").expect("build");
        assert!(h.meta.label.starts_with("QUANT SQ8"));
        let q = h.store.quantized_view().expect("v3 store");
        assert!(q.codec().is_some());
        let again = lab.quantized_index("sq8").expect("reopen");
        assert_eq!(again.meta.n_chunks, h.meta.n_chunks);
        assert!(again.store.quantized_view().is_ok());
        assert!(lab.quantized_index("nope").is_err());
    }

    #[test]
    fn truth_and_curves_are_cached() {
        let lab = tiny_lab("curves");
        let six = lab.six_indexes().expect("build");
        let dq = lab.dq().expect("dq");
        let sr_small = &six[1];
        let t1 = lab.truth(sr_small, &dq).expect("truth");
        let t2 = lab.truth(sr_small, &dq).expect("truth cached");
        assert_eq!(t1, t2);
        let c1 = lab.curve(sr_small, &dq).expect("curve");
        assert_eq!(c1.n_queries, 8);
        let c2 = lab.curve(sr_small, &dq).expect("curve cached");
        assert_eq!(c1.avg_completion_secs, c2.avg_completion_secs);
    }
}
