//! Scaling the paper's experimental setup to a configurable collection
//! size.
//!
//! The paper's regime (5,017,298 descriptors): BAG produced 4,720 / 2,685 /
//! 1,871 clusters averaging 947 / 1,711 / 2,486 descriptors for its SMALL /
//! MEDIUM / LARGE indexes. Scaling the collection down by a factor `s`
//! divides chunk *size* and chunk *count* by √s each, keeping both in a
//! regime where (a) a chunk holds far more than k = 30 descriptors and
//! (b) there are enough chunks for ranking to matter.
// lint:allow-file(panic.index): scale tables have compile-time-known entries

/// The paper's collection size.
pub const PAPER_N: usize = 5_017_298;
/// The paper's mean BAG chunk sizes for SMALL / MEDIUM / LARGE (Table 1).
pub const PAPER_CHUNK_SIZES: [f64; 3] = [947.0, 1_711.0, 2_486.0];
/// The paper's k (precision within the top 30).
pub const PAPER_K: usize = 30;
/// The paper's Figure 6/7 chunk-size sweep bounds.
pub const PAPER_SWEEP: (f64, f64) = (100.0, 100_000.0);

/// Experiment scale parameters.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Target collection size.
    pub n_descriptors: usize,
    /// Queries per workload (the paper uses 1,000).
    pub n_queries: usize,
    /// Result size (the paper uses 30).
    pub k: usize,
    /// Disk page size chunks are padded to.
    pub page_size: u32,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// A scale targeting roughly `n` descriptors with paper-default query
    /// count and k.
    pub fn new(n: usize) -> Self {
        Scale {
            n_descriptors: n,
            n_queries: 1_000,
            k: PAPER_K,
            page_size: 8_192,
            seed: 42,
        }
    }

    /// Reads the scale from `EFF2_SCALE` / `EFF2_QUERIES` / `EFF2_SEED`
    /// environment variables, defaulting to 100,000 descriptors and 1,000
    /// queries.
    pub fn from_env() -> Self {
        let n = std::env::var("EFF2_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100_000);
        let mut s = Scale::new(n);
        if let Some(q) = std::env::var("EFF2_QUERIES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            s.n_queries = q;
        }
        if let Some(seed) = std::env::var("EFF2_SEED").ok().and_then(|v| v.parse().ok()) {
            s.seed = seed;
        }
        s
    }

    /// The linear shrink factor relative to the paper.
    pub fn shrink(&self) -> f64 {
        self.n_descriptors as f64 / PAPER_N as f64
    }

    /// Target mean chunk sizes for the SMALL / MEDIUM / LARGE indexes:
    /// the paper's sizes scaled by √shrink, floored at 4·k so a single
    /// chunk still dwarfs the answer set. When the floor binds, the paper's
    /// 1 : 1.81 : 2.63 size ratios are re-applied on top of it so the three
    /// classes stay distinct at any scale.
    pub fn chunk_sizes(&self) -> [usize; 3] {
        let f = self.shrink().sqrt();
        let base = ((PAPER_CHUNK_SIZES[0] * f) as usize).max(4 * self.k) as f64;
        [
            base as usize,
            (base * PAPER_CHUNK_SIZES[1] / PAPER_CHUNK_SIZES[0]).round() as usize,
            (base * PAPER_CHUNK_SIZES[2] / PAPER_CHUNK_SIZES[0]).round() as usize,
        ]
    }

    /// BAG termination targets (cluster counts) that should realise
    /// [`Scale::chunk_sizes`] assuming ≈10 % outliers.
    pub fn bag_targets(&self) -> [usize; 3] {
        let retained = self.n_descriptors as f64 * 0.9;
        self.chunk_sizes()
            .map(|size| ((retained / size as f64) as usize).max(2))
    }

    /// The 16 log-spaced chunk sizes of the Figure 6/7 sweep, scaled by
    /// √shrink (paper: 100 … 100,000).
    pub fn sweep_sizes(&self) -> Vec<usize> {
        let f = self.shrink().sqrt();
        let lo = (PAPER_SWEEP.0 * f).max(2.0 * self.k as f64);
        let hi = ((PAPER_SWEEP.1 * f).min(self.n_descriptors as f64 / 2.0)).max(lo * 2.0);
        let steps = 16;
        (0..steps)
            .map(|i| {
                let t = i as f64 / (steps - 1) as f64;
                (lo * (hi / lo).powf(t)).round() as usize
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_reproduces_paper_numbers() {
        let s = Scale::new(PAPER_N);
        assert!((s.shrink() - 1.0).abs() < 1e-9);
        let sizes = s.chunk_sizes();
        assert_eq!(sizes, [947, 1_711, 2_486]);
        let targets = s.bag_targets();
        // ≈ 4768 / 2639 / 1816 — the paper's 4720 / 2685 / 1871 regime.
        assert!((4_200..5_200).contains(&targets[0]), "{targets:?}");
        assert!((2_300..3_000).contains(&targets[1]), "{targets:?}");
        assert!((1_600..2_100).contains(&targets[2]), "{targets:?}");
    }

    #[test]
    fn default_scale_is_sane() {
        let s = Scale::new(200_000);
        let sizes = s.chunk_sizes();
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2]);
        assert!(sizes[0] >= 4 * s.k);
        let targets = s.bag_targets();
        assert!(targets[0] > targets[1] && targets[1] > targets[2]);
        assert!(targets[2] >= 2);
    }

    #[test]
    fn sweep_is_log_spaced_and_monotone() {
        let s = Scale::new(200_000);
        let sweep = s.sweep_sizes();
        assert_eq!(sweep.len(), 16);
        assert!(sweep.windows(2).all(|w| w[1] > w[0]), "{sweep:?}");
        assert!(sweep[0] >= 2 * s.k);
        assert!(*sweep.last().unwrap() <= s.n_descriptors / 2 + 1);
        // Roughly geometric: ratios between consecutive sizes similar.
        let r0 = sweep[1] as f64 / sweep[0] as f64;
        let r1 = sweep[15] as f64 / sweep[14] as f64;
        assert!((r0 / r1 - 1.0).abs() < 0.3, "r0={r0} r1={r1}");
    }

    #[test]
    fn tiny_scale_stays_usable() {
        let s = Scale::new(5_000);
        let sizes = s.chunk_sizes();
        assert!(sizes.iter().all(|&x| x >= 4 * s.k));
        let sweep = s.sweep_sizes();
        assert!(sweep.windows(2).all(|w| w[1] > w[0]), "{sweep:?}");
    }
}
