#![warn(missing_docs)]

//! # eff2-eval
//!
//! The experiment harness: everything needed to regenerate the paper's
//! tables and figures at a configurable scale.
//!
//! | Paper artefact | Harness entry point |
//! |----------------|---------------------|
//! | Table 1 (chunk index properties) | [`experiments::table1`] |
//! | Figure 1 (30 largest chunks) | [`experiments::fig1`] |
//! | Figures 2–3 (chunks read vs neighbours, DQ/SQ) | [`experiments::exp1`] |
//! | Figures 4–5 (elapsed time vs neighbours, DQ/SQ) | [`experiments::exp1`] |
//! | Table 2 (time to completion) | [`experiments::exp1`] |
//! | Figures 6–7 (optimal chunk size, DQ/SQ) | [`experiments::exp2`] |
//! | Serving under load (beyond the paper: scheduler policies × concurrency) | [`experiments::exp4`] |
//! | Quality under chunk loss (beyond the paper: fault rate × retry policy) | [`experiments::exp5`] |
//!
//! The default scale is 100,000 descriptors (the paper used 5,017,298 — see
//! DESIGN.md §5 for the substitution rationale); chunk-size targets scale
//! with √(N/N_paper) so both the per-chunk population and the chunk count
//! stay in the paper's operating regime. Timings are reported on the
//! simulated 2005 testbed ([`eff2_storage::DiskModel::ata_2005`]).

pub mod experiments;
pub mod lab;
pub mod scale;

pub use lab::{IndexHandle, IndexMeta, Lab};
pub use scale::Scale;

/// Harness-level result type (errors cross crate boundaries).
// lint:allow(err.box_error): the eval binary is the top-level sink aggregating every crate's typed Error for CLI reporting
pub type EvalResult<T> = Result<T, Box<dyn std::error::Error + Send + Sync>>;
