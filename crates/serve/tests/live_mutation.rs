//! The live-mutation headline property: under ANY randomized interleaving
//! of inserts, deletes, compactions and searches — for every chunker and
//! every stop rule — each served query's `SearchResult` is bit-for-bit
//! identical to a solo run of that query against the epoch snapshot it
//! pinned at admission. Mutation changes *which* epoch a query sees,
//! never what a pinned epoch computes.

use eff2_core::chunkers::{ChunkFormer, RoundRobinChunker, SrTreeChunker};
use eff2_core::search::{SearchParams, SearchResult, StopRule};
use eff2_descriptor::{Descriptor, DescriptorSet, Vector};
use eff2_epoch::MutableIndex;
use eff2_serve::{merge_timelines, CompactionPolicy, LiveEvent, LiveServer};
use eff2_storage::diskmodel::{DiskModel, VirtualDuration};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let unique = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("eff2_live_{tag}_{}_{unique}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn lumpy_set(n: usize) -> DescriptorSet {
    (0..n)
        .map(|i| {
            let blob = (i % 5) as f32 * 20.0;
            let mut v = Vector::splat(blob);
            v[0] += ((i * 31) % 23) as f32 * 0.3;
            v[3] -= ((i * 17) % 19) as f32 * 0.2;
            Descriptor::new(i as u32, v)
        })
        .collect()
}

fn vd_bits(t: VirtualDuration) -> u64 {
    t.as_secs().to_bits()
}

fn assert_bit_identical(want: &SearchResult, got: &SearchResult, tag: &str) {
    assert_eq!(want.neighbors.len(), got.neighbors.len(), "{tag}: k");
    for (w, g) in want.neighbors.iter().zip(got.neighbors.iter()) {
        assert_eq!(w.id, g.id, "{tag}: neighbor id");
        assert_eq!(w.dist.to_bits(), g.dist.to_bits(), "{tag}: neighbor dist");
    }
    let (wl, gl) = (&want.log, &got.log);
    assert_eq!(wl.chunks_read, gl.chunks_read, "{tag}: chunks_read");
    assert_eq!(
        wl.descriptors_scanned, gl.descriptors_scanned,
        "{tag}: scanned"
    );
    assert_eq!(wl.bytes_read, gl.bytes_read, "{tag}: bytes");
    assert_eq!(
        vd_bits(wl.total_virtual),
        vd_bits(gl.total_virtual),
        "{tag}: total virtual"
    );
    assert_eq!(wl.completed, gl.completed, "{tag}: completed");
    assert_eq!(wl.events.len(), gl.events.len(), "{tag}: event count");
    for (w, g) in wl.events.iter().zip(gl.events.iter()) {
        assert_eq!(w.chunk_id, g.chunk_id, "{tag}: chunk_id");
        assert_eq!(
            vd_bits(w.completed_at),
            vd_bits(g.completed_at),
            "{tag}: completed_at"
        );
        assert_eq!(w.kth_dist.to_bits(), g.kth_dist.to_bits(), "{tag}: kth");
    }
}

fn build_index(
    tag: &str,
    set: &DescriptorSet,
    former: &dyn ChunkFormer,
    target: usize,
) -> MutableIndex {
    let formation = former.form(set);
    MutableIndex::create(
        &tmp_dir(tag),
        "live",
        set,
        &formation.chunks,
        512,
        None,
        DiskModel::ata_2005(),
        target,
    )
    .expect("create")
}

fn arb_former() -> impl Strategy<Value = Box<dyn ChunkFormer>> {
    prop_oneof![
        (15usize..50)
            .prop_map(|leaf| Box::new(SrTreeChunker { leaf_size: leaf }) as Box<dyn ChunkFormer>),
        (2usize..12)
            .prop_map(|n| Box::new(RoundRobinChunker { n_chunks: n }) as Box<dyn ChunkFormer>),
    ]
}

fn arb_stop() -> impl Strategy<Value = StopRule> {
    prop_oneof![
        (1usize..8).prop_map(StopRule::Chunks),
        (0.01f64..0.15).prop_map(|s| StopRule::VirtualTime(VirtualDuration::from_secs(s))),
        Just(StopRule::ToCompletion),
        (0.0f32..1.0).prop_map(StopRule::ToCompletionEps),
    ]
}

fn arb_policy() -> impl Strategy<Value = CompactionPolicy> {
    prop_oneof![
        Just(CompactionPolicy::Never),
        (3usize..20).prop_map(CompactionPolicy::EveryOps),
    ]
}

/// One drawn mutation: `insert` decides the op, `pick` selects the target
/// (a base id to delete, or which base vector a fresh insert lands near).
#[derive(Clone, Debug)]
struct OpDraw {
    insert: bool,
    pick: usize,
    jitter: f32,
}

fn arb_ops(max: usize) -> impl Strategy<Value = Vec<OpDraw>> {
    proptest::collection::vec(
        (0usize..2, 0usize..10_000, -0.5f32..0.5).prop_map(|(coin, pick, jitter)| OpDraw {
            insert: coin == 0,
            pick,
            jitter,
        }),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Searches under concurrent mutation and online compaction ≡ solo
    /// runs on their pinned epoch snapshots, for every chunker × stop
    /// rule × compaction policy the strategy draws.
    #[test]
    fn served_under_mutation_equals_solo_on_pinned_epoch(
        (former, stop, policy) in (arb_former(), arb_stop(), arb_policy()),
        (n, n_queries, k) in (120usize..320, 2usize..8, 1usize..10),
        ops in arb_ops(36),
        (gap_q_ms, gap_m_ms) in (0.5f64..20.0, 0.2f64..8.0),
    ) {
        let set = lumpy_set(n);
        let index = build_index("prop", &set, former.as_ref(), 30);
        let params = SearchParams { k, stop, prefetch_depth: 2, log_snapshots: false };

        let queries: Vec<(Vector, VirtualDuration)> = (0..n_queries)
            .map(|i| (
                set.vector_owned((i * 53) % set.len()),
                VirtualDuration::from_ms(gap_q_ms * i as f64),
            ))
            .collect();
        let mutations: Vec<(VirtualDuration, LiveEvent)> = ops
            .iter()
            .enumerate()
            .map(|(j, op)| {
                let at = VirtualDuration::from_ms(gap_m_ms * j as f64);
                let event = if op.insert {
                    let mut v = set.vector_owned(op.pick % set.len());
                    v[1] += op.jitter;
                    LiveEvent::Insert { id: 50_000 + j as u32, vector: v }
                } else {
                    LiveEvent::Delete { id: (op.pick % set.len()) as u32 }
                };
                (at, event)
            })
            .collect();
        let trace = merge_timelines(&queries, &mutations);

        let server = LiveServer::new(index, params, policy);
        let (report, index) = server.serve_trace(&trace).expect("serve");
        prop_assert_eq!(report.completions.len(), n_queries);
        prop_assert_eq!(report.stats.mutations, ops.len() as u64);
        prop_assert_eq!(index.epoch(), ops.len() as u64);

        for c in &report.completions {
            let solo = c.snapshot.search(&c.query, &params).expect("solo");
            assert_bit_identical(
                &solo,
                &c.result,
                &format!("{}/gen{}/epoch{}/q{}",
                    policy.name(), c.snapshot.generation(), c.snapshot.epoch(), c.id),
            );
        }

        // Compactions that ran stayed within the rebalancing bound.
        if report.stats.compactions > 0 {
            prop_assert!(report.stats.max_installed_chunk <= 2 * index.target_chunk_size());
        }
    }
}

/// The live server is a pure function of (index files, trace): two runs
/// over identical inputs produce identical completions, fleet figures and
/// final generations.
#[test]
fn live_replays_are_bit_identical() {
    let set = lumpy_set(400);
    let params = SearchParams::exact(6);
    let run = |tag: &str| {
        let index = build_index(tag, &set, &SrTreeChunker { leaf_size: 30 }, 30);
        let queries: Vec<(Vector, VirtualDuration)> = (0..8)
            .map(|i| {
                (
                    set.vector_owned((i * 41) % set.len()),
                    VirtualDuration::from_ms(4.0 * i as f64),
                )
            })
            .collect();
        let mutations: Vec<(VirtualDuration, LiveEvent)> = (0..30)
            .map(|j| {
                let at = VirtualDuration::from_ms(1.5 * j as f64);
                let event = if j % 3 == 0 {
                    LiveEvent::Delete {
                        id: (j * 7 % 400) as u32,
                    }
                } else {
                    LiveEvent::Insert {
                        id: 50_000 + j as u32,
                        vector: set.vector_owned((j * 13) % set.len()),
                    }
                };
                (at, event)
            })
            .collect();
        let trace = merge_timelines(&queries, &mutations);
        LiveServer::new(index, params, CompactionPolicy::EveryOps(10))
            .serve_trace(&trace)
            .expect("serve")
    };
    let (a, index_a) = run("replay_a");
    let (b, index_b) = run("replay_b");
    assert!(a.stats.compactions >= 1, "the policy must have fired");
    assert_eq!(a.stats.compactions, b.stats.compactions);
    assert_eq!(a.stats.chunks_fed, b.stats.chunks_fed);
    assert_eq!(index_a.generation(), index_b.generation());
    assert_eq!(index_a.epoch(), index_b.epoch());
    assert_eq!(a.final_chunk_loads, b.final_chunk_loads);
    assert_eq!(
        a.makespan.as_secs().to_bits(),
        b.makespan.as_secs().to_bits()
    );
    assert_eq!(a.completions.len(), b.completions.len());
    for (x, y) in a.completions.iter().zip(b.completions.iter()) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.snapshot.generation(), y.snapshot.generation());
        assert_eq!(x.snapshot.epoch(), y.snapshot.epoch());
        assert_bit_identical(&x.result, &y.result, &format!("replay q{}", x.id));
    }
}
