//! The serving layer's load-bearing property: interleaving N sessions
//! under ANY policy, ANY concurrency level and ANY worker-thread count
//! yields per-query `SearchResult`s and `ChunkEvent` traces bit-identical
//! to running the same queries serially, one at a time. Scheduling is
//! allowed to change fleet timing — never what a query computes.

use eff2_core::chunkers::{ChunkFormer, RoundRobinChunker, SrTreeChunker};
use eff2_core::index::ChunkIndex;
use eff2_core::search::{search_batch_threads, SearchParams, SearchResult, StopRule};
use eff2_core::snapshot::Snapshot;
use eff2_descriptor::{Descriptor, DescriptorSet, Vector};
use eff2_serve::{Policy, Scheduler, SchedulerConfig};
use eff2_storage::diskmodel::{DiskModel, VirtualDuration};
use eff2_storage::ChunkStore;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let unique = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "eff2_serve_det_{tag}_{}_{unique}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn lumpy_set(n: usize) -> DescriptorSet {
    (0..n)
        .map(|i| {
            let blob = (i % 5) as f32 * 20.0;
            let mut v = Vector::splat(blob);
            v[0] += ((i * 31) % 23) as f32 * 0.3;
            v[3] -= ((i * 17) % 19) as f32 * 0.2;
            Descriptor::new(i as u32, v)
        })
        .collect()
}

fn vd_bits(t: VirtualDuration) -> u64 {
    t.as_secs().to_bits()
}

fn assert_bit_identical(want: &SearchResult, got: &SearchResult, tag: &str) {
    assert_eq!(want.neighbors.len(), got.neighbors.len(), "{tag}: k");
    for (w, g) in want.neighbors.iter().zip(got.neighbors.iter()) {
        assert_eq!(w.id, g.id, "{tag}: neighbor id");
        assert_eq!(w.dist.to_bits(), g.dist.to_bits(), "{tag}: neighbor dist");
    }
    let (wl, gl) = (&want.log, &got.log);
    assert_eq!(
        vd_bits(wl.index_read_time),
        vd_bits(gl.index_read_time),
        "{tag}: index time"
    );
    assert_eq!(wl.chunks_read, gl.chunks_read, "{tag}: chunks_read");
    assert_eq!(
        wl.descriptors_scanned, gl.descriptors_scanned,
        "{tag}: scanned"
    );
    assert_eq!(wl.bytes_read, gl.bytes_read, "{tag}: bytes");
    assert_eq!(
        vd_bits(wl.total_virtual),
        vd_bits(gl.total_virtual),
        "{tag}: total virtual"
    );
    assert_eq!(wl.completed, gl.completed, "{tag}: completed");
    assert_eq!(wl.events.len(), gl.events.len(), "{tag}: event count");
    for (w, g) in wl.events.iter().zip(gl.events.iter()) {
        assert_eq!(w.rank, g.rank, "{tag}: rank");
        assert_eq!(w.chunk_id, g.chunk_id, "{tag}: chunk_id");
        assert_eq!(w.count, g.count, "{tag}: count");
        assert_eq!(w.bytes_read, g.bytes_read, "{tag}: event bytes");
        assert_eq!(
            vd_bits(w.completed_at),
            vd_bits(g.completed_at),
            "{tag}: completed_at"
        );
        assert_eq!(w.kth_dist.to_bits(), g.kth_dist.to_bits(), "{tag}: kth");
        assert_eq!(w.topk_ids, g.topk_ids, "{tag}: topk snapshot");
    }
}

fn build_snapshot(tag: &str, set: &DescriptorSet, former: &dyn ChunkFormer) -> Snapshot {
    let formation = former.form(set);
    let store =
        ChunkStore::create(&tmp_dir(tag), "ix", set, &formation.chunks, 512).expect("create");
    ChunkIndex::from_store(store, DiskModel::ata_2005()).snapshot()
}

fn arb_former() -> impl Strategy<Value = Box<dyn ChunkFormer>> {
    prop_oneof![
        (15usize..50)
            .prop_map(|leaf| Box::new(SrTreeChunker { leaf_size: leaf }) as Box<dyn ChunkFormer>),
        (2usize..12)
            .prop_map(|n| Box::new(RoundRobinChunker { n_chunks: n }) as Box<dyn ChunkFormer>),
    ]
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::FairShare),
        Just(Policy::EarliestDeadline),
        Just(Policy::MostWantedChunk),
    ]
}

fn arb_stop() -> impl Strategy<Value = StopRule> {
    prop_oneof![
        (1usize..8).prop_map(StopRule::Chunks),
        (0.01f64..0.15).prop_map(|s| StopRule::VirtualTime(VirtualDuration::from_secs(s))),
        Just(StopRule::ToCompletion),
        (0.0f32..1.0).prop_map(StopRule::ToCompletionEps),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N interleaved sessions ≡ serial, for every (policy, concurrency,
    /// worker-thread) combination the strategy draws. The serial reference
    /// itself is computed twice — single-threaded and with the drawn
    /// thread count through `search_batch_threads` (the `EFF2_THREADS`
    /// path) — pinning the whole stack to one answer.
    #[test]
    fn interleaved_equals_serial(
        (former, policy, stop) in (arb_former(), arb_policy(), arb_stop()),
        (n, n_queries, max_active) in (120usize..400, 2usize..10, 1usize..9),
        (threads, gap_ms, k) in (1usize..5, 0.0f64..20.0, 1usize..10),
    ) {
        let set = lumpy_set(n);
        let snap = build_snapshot("prop", &set, former.as_ref());
        let params = SearchParams { k, stop, prefetch_depth: 2, log_snapshots: true };

        let queries: Vec<Vector> = (0..n_queries)
            .map(|i| set.vector_owned((i * 53) % set.len()))
            .collect();
        let trace: Vec<(Vector, VirtualDuration)> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| (*q, VirtualDuration::from_ms(gap_ms * i as f64)))
            .collect();

        // Serial reference: one query at a time over its own source.
        let serial: Vec<SearchResult> = queries
            .iter()
            .map(|q| snap.search(q, &params).expect("serial"))
            .collect();

        // The parallel batch path must agree at any worker-thread count.
        let batch = search_batch_threads(snap.store(), snap.model(), &queries, &params, threads)
            .expect("batch");
        for (i, (want, got)) in serial.iter().zip(batch.iter()).enumerate() {
            assert_bit_identical(want, got, &format!("batch/t{threads}/q{i}"));
        }

        // The interleaved scheduler must agree under any policy at any
        // concurrency level.
        let mut config = SchedulerConfig::new(policy, max_active);
        config.max_queued = queries.len();
        let report = Scheduler::new(snap.clone(), config)
            .serve_trace(&trace, &params)
            .expect("serve");
        prop_assert_eq!(report.stats.rejected, 0u64);
        prop_assert_eq!(report.completions.len(), queries.len());
        for c in &report.completions {
            let want = serial.get(c.id as usize).expect("id in range");
            assert_bit_identical(
                want,
                &c.result,
                &format!("sched/{}/act{max_active}/q{}", policy.name(), c.id),
            );
        }
    }
}

/// The scheduler itself must be a pure function of (snapshot, config,
/// trace): two runs give identical fleet figures, tick for tick.
#[test]
fn scheduler_replays_are_bit_identical() {
    let set = lumpy_set(500);
    let snap = build_snapshot("replay", &set, &SrTreeChunker { leaf_size: 30 });
    let params = SearchParams::exact(8);
    let trace: Vec<(Vector, VirtualDuration)> = (0..10)
        .map(|i| {
            (
                set.vector_owned((i * 41) % set.len()),
                VirtualDuration::from_ms(2.5 * i as f64),
            )
        })
        .collect();
    for policy in Policy::ALL {
        let run = || {
            let mut config = SchedulerConfig::new(policy, 4);
            config.max_queued = trace.len();
            Scheduler::new(snap.clone(), config)
                .serve_trace(&trace, &params)
                .expect("serve")
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats.fetches, b.stats.fetches);
        assert_eq!(a.stats.disk_reads, b.stats.disk_reads);
        assert_eq!(a.stats.feeds, b.stats.feeds);
        assert_eq!(
            a.makespan.as_secs().to_bits(),
            b.makespan.as_secs().to_bits()
        );
        for (x, y) in a.completions.iter().zip(b.completions.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.finish.as_secs().to_bits(), y.finish.as_secs().to_bits());
            assert_bit_identical(&x.result, &y.result, &format!("replay/{}", policy.name()));
        }
    }
}
