//! The image layer's load-bearing properties:
//!
//! 1. a run-to-completion image query through the interleaved
//!    [`ImageScheduler`] is bit-identical — per-descriptor results *and*
//!    image vote ranking — to [`solo_image_search`], under ANY policy,
//!    ANY chunker, ANY per-descriptor stop rule and ANY concurrency;
//! 2. whenever an early-terminated run's stability certificate holds,
//!    its top-`m` image prefix agrees with the full run's;
//! 3. `descriptors_spent + descriptors_abandoned == descriptors_total`,
//!    always, per query and in the fleet totals.

use eff2_core::chunkers::{ChunkFormer, RoundRobinChunker, SrTreeChunker};
use eff2_core::image::{solo_image_search, ImageStopRule, ImageVote};
use eff2_core::index::ChunkIndex;
use eff2_core::search::{SearchParams, SearchResult, StopRule};
use eff2_core::snapshot::Snapshot;
use eff2_descriptor::{Descriptor, DescriptorSet, Vector};
use eff2_serve::{ImageConfig, ImageQuerySpec, ImageScheduler, Policy};
use eff2_storage::diskmodel::{DiskModel, VirtualDuration};
use eff2_storage::ChunkStore;
use eff2_workload::{image_of_map, image_queries};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let unique = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("eff2_img_eq_{tag}_{}_{unique}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn lumpy_set(n: usize) -> DescriptorSet {
    (0..n)
        .map(|i| {
            let blob = (i % 5) as f32 * 20.0;
            let mut v = Vector::splat(blob);
            v[0] += ((i * 31) % 23) as f32 * 0.3;
            v[3] -= ((i * 17) % 19) as f32 * 0.2;
            Descriptor::new(i as u32, v)
        })
        .collect()
}

fn build_snapshot(tag: &str, set: &DescriptorSet, former: &dyn ChunkFormer) -> Snapshot {
    let formation = former.form(set);
    let store =
        ChunkStore::create(&tmp_dir(tag), "ix", set, &formation.chunks, 512).expect("create");
    ChunkIndex::from_store(store, DiskModel::ata_2005()).snapshot()
}

fn arb_former() -> impl Strategy<Value = Box<dyn ChunkFormer>> {
    prop_oneof![
        (15usize..50)
            .prop_map(|leaf| Box::new(SrTreeChunker { leaf_size: leaf }) as Box<dyn ChunkFormer>),
        (2usize..12)
            .prop_map(|n| Box::new(RoundRobinChunker { n_chunks: n }) as Box<dyn ChunkFormer>),
    ]
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::FairShare),
        Just(Policy::EarliestDeadline),
        Just(Policy::MostWantedChunk),
    ]
}

fn arb_stop() -> impl Strategy<Value = StopRule> {
    prop_oneof![
        (1usize..8).prop_map(StopRule::Chunks),
        (0.01f64..0.15).prop_map(|s| StopRule::VirtualTime(VirtualDuration::from_secs(s))),
        Just(StopRule::ToCompletion),
        (0.0f32..1.0).prop_map(StopRule::ToCompletionEps),
    ]
}

fn arb_image_stop() -> impl Strategy<Value = ImageStopRule> {
    prop_oneof![
        ((1usize..6), (1usize..4)).prop_map(|(m, window)| ImageStopRule::StableTop { m, window }),
        (1usize..6).prop_map(|m| ImageStopRule::CertifiedTop { m }),
    ]
}

fn assert_same_ranking(want: &[ImageVote], got: &[ImageVote], tag: &str) {
    assert_eq!(want.len(), got.len(), "{tag}: ranking length");
    for (w, g) in want.iter().zip(got.iter()) {
        assert_eq!(w.image, g.image, "{tag}: image");
        assert_eq!(w.votes, g.votes, "{tag}: votes");
        assert_eq!(
            w.best_dist.to_bits(),
            g.best_dist.to_bits(),
            "{tag}: best_dist"
        );
    }
}

fn assert_bit_identical(want: &SearchResult, got: &SearchResult, tag: &str) {
    assert_eq!(want.neighbors.len(), got.neighbors.len(), "{tag}: k");
    for (w, g) in want.neighbors.iter().zip(got.neighbors.iter()) {
        assert_eq!(w.id, g.id, "{tag}: neighbor id");
        assert_eq!(w.dist.to_bits(), g.dist.to_bits(), "{tag}: neighbor dist");
    }
    assert_eq!(
        want.log.chunks_read, got.log.chunks_read,
        "{tag}: chunks_read"
    );
    assert_eq!(
        want.log.total_virtual.as_secs().to_bits(),
        got.log.total_virtual.as_secs().to_bits(),
        "{tag}: per-descriptor virtual clock"
    );
    assert_eq!(want.log.completed, got.log.completed, "{tag}: completed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Property 1: run-to-completion interleaved image queries are
    /// bit-identical to the solo reference — per descriptor and in the
    /// aggregated vote ranking — across policies × chunkers ×
    /// per-descriptor stop rules × concurrency levels.
    #[test]
    fn interleaved_image_queries_equal_solo(
        (former, policy, stop) in (arb_former(), arb_policy(), arb_stop()),
        (n, n_images, n_queries) in (150usize..400, 6usize..20, 1usize..5),
        (per_query, max_active, k) in (1usize..7, 1usize..4, 1usize..8),
        (gap_ms, seed) in (0.0f64..10.0, 0u64..1000),
    ) {
        let set = lumpy_set(n);
        let snap = build_snapshot("solo", &set, former.as_ref());
        let image_of = Arc::new(image_of_map(set.len(), n_images, 0.8, seed));
        let queries = image_queries(&set, &image_of, n_queries, per_query, seed ^ 0x5eed);
        let params = SearchParams { k, stop, prefetch_depth: 2, log_snapshots: false };

        let solo: Vec<_> = queries
            .iter()
            .map(|q| {
                solo_image_search(&snap, q.image, &q.descriptors, &params, &image_of)
                    .expect("solo")
            })
            .collect();

        let mut config = ImageConfig::new(policy, max_active, ImageStopRule::RunAll);
        config.max_queued = queries.len();
        config.keep_descriptor_results = true;
        let trace: Vec<(ImageQuerySpec, VirtualDuration)> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                (
                    ImageQuerySpec { label: q.image, descriptors: q.descriptors.clone() },
                    VirtualDuration::from_ms(gap_ms * i as f64),
                )
            })
            .collect();
        let report = ImageScheduler::new(snap.clone(), config, Arc::clone(&image_of))
            .serve_trace(&trace, &params)
            .expect("serve");
        prop_assert_eq!(report.stats.rejected, 0u64);
        prop_assert_eq!(report.completions.len(), queries.len());

        for c in &report.completions {
            let (want_outcome, want_results) = solo.get(c.id as usize).expect("id");
            let tag = format!("{}/act{max_active}/img{}", policy.name(), c.id);
            assert_same_ranking(&want_outcome.ranking, &c.outcome.ranking, &tag);
            prop_assert_eq!(c.outcome.descriptors_abandoned, 0);
            prop_assert_eq!(c.outcome.descriptors_spent, want_outcome.descriptors_spent);
            prop_assert!(c.outcome.certificate, "no-abandonment runs self-certify");
            prop_assert_eq!(c.outcome.fidelity, want_outcome.fidelity);
            let results = c.descriptor_results.as_ref().expect("kept");
            prop_assert_eq!(results.len(), want_results.len());
            for (d, (got, want)) in results.iter().zip(want_results.iter()).enumerate() {
                let got = got.as_ref().expect("no descriptor was abandoned");
                assert_bit_identical(want, got, &format!("{tag}/d{d}"));
            }
        }
    }

    /// Properties 2 + 3: under an early-termination rule, accounting is
    /// exact (spent + abandoned == total, per query and in the fleet
    /// totals), and whenever the stability certificate holds the top-`m`
    /// prefix agrees with the full (solo) run's.
    #[test]
    fn early_termination_certificate_and_accounting(
        (former, policy, image_stop) in (arb_former(), arb_policy(), arb_image_stop()),
        (n, n_images, n_queries) in (150usize..400, 4usize..16, 1usize..5),
        (per_query, max_active, k) in (2usize..10, 1usize..4, 1usize..8),
        seed in 0u64..1000,
    ) {
        let set = lumpy_set(n);
        let snap = build_snapshot("early", &set, former.as_ref());
        let image_of = Arc::new(image_of_map(set.len(), n_images, 0.8, seed));
        let queries = image_queries(&set, &image_of, n_queries, per_query, seed ^ 0xabcd);
        let params = SearchParams::exact(k);

        let solo: Vec<_> = queries
            .iter()
            .map(|q| {
                solo_image_search(&snap, q.image, &q.descriptors, &params, &image_of)
                    .expect("solo")
            })
            .collect();

        let mut config = ImageConfig::new(policy, max_active, image_stop);
        config.max_queued = queries.len();
        let trace: Vec<(ImageQuerySpec, VirtualDuration)> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                (
                    ImageQuerySpec { label: q.image, descriptors: q.descriptors.clone() },
                    VirtualDuration::from_ms(i as f64),
                )
            })
            .collect();
        let report = ImageScheduler::new(snap.clone(), config, Arc::clone(&image_of))
            .serve_trace(&trace, &params)
            .expect("serve");
        prop_assert_eq!(report.completions.len(), queries.len());

        let m = match image_stop {
            ImageStopRule::StableTop { m, .. } | ImageStopRule::CertifiedTop { m } => m,
            ImageStopRule::RunAll => unreachable!("strategy never draws RunAll"),
        };
        let mut fleet_spent = 0u64;
        let mut fleet_abandoned = 0u64;
        for c in &report.completions {
            // Property 3: exact accounting.
            prop_assert_eq!(
                c.outcome.descriptors_spent + c.outcome.descriptors_abandoned,
                c.outcome.descriptors_total
            );
            prop_assert_eq!(c.outcome.descriptors_total, per_query);
            fleet_spent += c.outcome.descriptors_spent as u64;
            fleet_abandoned += c.outcome.descriptors_abandoned as u64;

            // Property 2: a held certificate pins the ordered prefix.
            let (want, _) = solo.get(c.id as usize).expect("id");
            if c.outcome.certificate {
                prop_assert_eq!(
                    c.outcome.top_images(m),
                    want.top_images(m),
                    "certified prefix diverged: {} img{}",
                    image_stop.label(),
                    c.id
                );
            }
            // A CertifiedTop stop only ever fires on a proof.
            if matches!(image_stop, ImageStopRule::CertifiedTop { .. })
                && c.outcome.descriptors_abandoned > 0
            {
                prop_assert!(c.outcome.certificate);
            }
        }
        prop_assert_eq!(fleet_spent, report.stats.descriptors_spent);
        prop_assert_eq!(fleet_abandoned, report.stats.descriptors_abandoned);
    }
}

/// The image scheduler is a pure function of (snapshot, config, trace):
/// replays agree tick for tick, including early-termination decisions.
#[test]
fn image_scheduler_replays_are_bit_identical() {
    let set = lumpy_set(500);
    let snap = build_snapshot("replay", &set, &SrTreeChunker { leaf_size: 30 });
    let image_of = Arc::new(image_of_map(set.len(), 12, 1.0, 3));
    let queries = image_queries(&set, &image_of, 6, 5, 17);
    let params = SearchParams::exact(6);
    let trace: Vec<(ImageQuerySpec, VirtualDuration)> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            (
                ImageQuerySpec {
                    label: q.image,
                    descriptors: q.descriptors.clone(),
                },
                VirtualDuration::from_ms(2.0 * i as f64),
            )
        })
        .collect();
    for policy in Policy::ALL {
        let run = || {
            let config = ImageConfig::new(policy, 3, ImageStopRule::StableTop { m: 3, window: 2 });
            ImageScheduler::new(snap.clone(), config, Arc::clone(&image_of))
                .serve_trace(&trace, &params)
                .expect("serve")
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats.fetches, b.stats.fetches);
        assert_eq!(a.stats.feeds, b.stats.feeds);
        assert_eq!(a.stats.descriptors_spent, b.stats.descriptors_spent);
        assert_eq!(a.stats.descriptors_abandoned, b.stats.descriptors_abandoned);
        assert_eq!(
            a.makespan.as_secs().to_bits(),
            b.makespan.as_secs().to_bits()
        );
        for (x, y) in a.completions.iter().zip(b.completions.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.finish.as_secs().to_bits(), y.finish.as_secs().to_bits());
            assert_same_ranking(
                &x.outcome.ranking,
                &y.outcome.ranking,
                &format!("replay/{}", policy.name()),
            );
            assert_eq!(x.outcome.descriptors_spent, y.outcome.descriptors_spent);
            assert_eq!(x.outcome.events, y.outcome.events);
        }
    }
}
