//! The fleet's load-bearing property: scatter–gather over ANY shard
//! count, ANY replication factor, ANY placement policy and ANY stop rule
//! merges every query to a result bit-identical to the single-device run
//! (faults quiet) — and when a fault plan kills every copy, the fleet
//! degrades exactly like the solo scheduler's permanent loss.

use eff2_chaos::{FaultConfig, FaultPlan, RetryPolicy};
use eff2_core::chunkers::{ChunkFormer, SrTreeChunker};
use eff2_core::index::ChunkIndex;
use eff2_core::search::{SearchParams, SearchResult, StopRule};
use eff2_core::snapshot::Snapshot;
use eff2_descriptor::{Descriptor, DescriptorSet, Vector};
use eff2_serve::{FleetConfig, FleetScheduler, LossScope, Policy, Scheduler, SchedulerConfig};
use eff2_shard::Placement;
use eff2_storage::diskmodel::{DiskModel, VirtualDuration};
use eff2_storage::ChunkStore;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let unique = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "eff2_fleet_eq_{tag}_{}_{unique}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn lumpy_set(n: usize) -> DescriptorSet {
    (0..n)
        .map(|i| {
            let blob = (i % 5) as f32 * 20.0;
            let mut v = Vector::splat(blob);
            v[0] += ((i * 31) % 23) as f32 * 0.3;
            v[3] -= ((i * 17) % 19) as f32 * 0.2;
            Descriptor::new(i as u32, v)
        })
        .collect()
}

fn build_snapshot(tag: &str, n: usize, leaf: usize) -> (Snapshot, DescriptorSet) {
    let set = lumpy_set(n);
    let formation = SrTreeChunker { leaf_size: leaf }.form(&set);
    let store =
        ChunkStore::create(&tmp_dir(tag), "s", &set, &formation.chunks, 512).expect("create");
    (
        ChunkIndex::from_store(store, DiskModel::ata_2005()).snapshot(),
        set,
    )
}

fn trace(set: &DescriptorSet, n: usize, gap_ms: f64) -> Vec<(Vector, VirtualDuration)> {
    (0..n)
        .map(|i| {
            let q = set.vector_owned((i * 37) % set.len());
            (q, VirtualDuration::from_ms(gap_ms * i as f64))
        })
        .collect()
}

fn vd_bits(t: VirtualDuration) -> u64 {
    t.as_secs().to_bits()
}

/// Full bit-compare of a merged fleet result against the single-device
/// reference: neighbours, log figures, per-chunk events and the
/// degradation report.
fn assert_bit_identical(want: &SearchResult, got: &SearchResult, tag: &str) {
    assert_eq!(want.neighbors.len(), got.neighbors.len(), "{tag}: k");
    for (w, g) in want.neighbors.iter().zip(got.neighbors.iter()) {
        assert_eq!(w.id, g.id, "{tag}: neighbor id");
        assert_eq!(w.dist.to_bits(), g.dist.to_bits(), "{tag}: neighbor dist");
    }
    let (wl, gl) = (&want.log, &got.log);
    assert_eq!(wl.chunks_read, gl.chunks_read, "{tag}: chunks_read");
    assert_eq!(
        wl.descriptors_scanned, gl.descriptors_scanned,
        "{tag}: scanned"
    );
    assert_eq!(wl.bytes_read, gl.bytes_read, "{tag}: bytes");
    assert_eq!(wl.completed, gl.completed, "{tag}: completed");
    assert_eq!(
        vd_bits(wl.total_virtual),
        vd_bits(gl.total_virtual),
        "{tag}: total virtual"
    );
    assert_eq!(
        wl.degradation.chunks_lost, gl.degradation.chunks_lost,
        "{tag}: chunks lost"
    );
    assert_eq!(
        wl.degradation.descriptors_lost, gl.degradation.descriptors_lost,
        "{tag}: descriptors lost"
    );
    assert_eq!(
        wl.degradation.lost_chunks, gl.degradation.lost_chunks,
        "{tag}: lost set"
    );
    assert_eq!(wl.events.len(), gl.events.len(), "{tag}: event count");
    for (w, g) in wl.events.iter().zip(gl.events.iter()) {
        assert_eq!(w.rank, g.rank, "{tag}: rank");
        assert_eq!(w.chunk_id, g.chunk_id, "{tag}: chunk_id");
        assert_eq!(w.count, g.count, "{tag}: count");
        assert_eq!(w.bytes_read, g.bytes_read, "{tag}: event bytes");
        assert_eq!(
            vd_bits(w.completed_at),
            vd_bits(g.completed_at),
            "{tag}: completed_at"
        );
        assert_eq!(w.kth_dist.to_bits(), g.kth_dist.to_bits(), "{tag}: kth");
    }
}

fn stop_rule(which: usize) -> StopRule {
    match which % 5 {
        0 => StopRule::Chunks(3),
        1 => StopRule::Chunks(usize::MAX),
        2 => StopRule::VirtualTime(VirtualDuration::from_ms(40.0)),
        3 => StopRule::ToCompletion,
        _ => StopRule::ToCompletionEps(0.4),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Quiet fleet, any shape: every merged answer (and its whole log,
    /// including the empty degradation report) is bit-identical to the
    /// serial single-device run of the same query.
    #[test]
    fn fleet_merges_bit_identical_to_single_device(
        n_shards in 1usize..=6,
        replication in 1usize..=3,
        placement_ix in 0usize..2,
        policy_ix in 0usize..3,
        which_stop in 0usize..5,
        n_queries in 3usize..=8,
    ) {
        let placement = Placement::ALL[placement_ix];
        let policy = Policy::ALL[policy_ix];
        let (snap, set) = build_snapshot("quiet", 500, 28);
        let params = SearchParams {
            stop: stop_rule(which_stop),
            ..SearchParams::exact(6)
        };
        let queries = trace(&set, n_queries, 1.5);
        let serial: Vec<SearchResult> = queries
            .iter()
            .map(|(q, _)| snap.search(q, &params).expect("serial"))
            .collect();
        let mut config = FleetConfig::new(policy, n_shards, 4);
        config.placement = placement;
        config.replication = replication;
        config.max_queued = queries.len();
        let report = FleetScheduler::new(snap.clone(), config)
            .serve_trace(&queries, &params)
            .expect("fleet");
        prop_assert_eq!(report.report.stats.rejected, 0u64);
        prop_assert_eq!(report.report.completions.len(), queries.len());
        for (c, want) in report.report.completions.iter().zip(serial.iter()) {
            assert_bit_identical(
                want,
                &c.result,
                &format!(
                    "{}x{} {} {} q{}",
                    n_shards,
                    replication,
                    placement.name(),
                    policy.name(),
                    c.id
                ),
            );
        }
    }

    /// A fault plan whose permanent draw kills EVERY copy degrades the
    /// fleet exactly like the solo scheduler degrades today: same
    /// neighbours, same lost-chunk sets, same fidelity — replication
    /// cannot help when the loss is in the data, not the medium.
    #[test]
    fn all_replicas_lost_degrades_like_solo_permanent_loss(
        n_shards in 1usize..=5,
        replication in 1usize..=3,
        placement_ix in 0usize..2,
        seed in 1u64..200,
    ) {
        let placement = Placement::ALL[placement_ix];
        let (snap, set) = build_snapshot("lossy", 500, 28);
        let params = SearchParams {
            stop: StopRule::Chunks(usize::MAX),
            ..SearchParams::exact(6)
        };
        let queries = trace(&set, 5, 1.5);
        let plan = FaultPlan::new(FaultConfig::lossy(seed, 0.15));
        let retry = RetryPolicy::new(
            2,
            VirtualDuration::from_ms(5.0),
            VirtualDuration::from_ms(1.0),
        );
        let mut solo_config = SchedulerConfig::new(Policy::MostWantedChunk, 4);
        solo_config.max_queued = queries.len();
        solo_config.fault_plan = Some(plan);
        solo_config.retry = retry;
        let solo = Scheduler::new(snap.clone(), solo_config)
            .serve_trace(&queries, &params)
            .expect("solo");
        let mut config = FleetConfig::new(Policy::MostWantedChunk, n_shards, 4);
        config.placement = placement;
        config.replication = replication;
        config.max_queued = queries.len();
        config.fault_plan = Some(plan);
        config.loss_scope = LossScope::AllCopies;
        config.retry = retry;
        let fleet = FleetScheduler::new(snap.clone(), config)
            .serve_trace(&queries, &params)
            .expect("fleet");
        prop_assert_eq!(
            fleet.report.stats.sessions_degraded,
            solo.stats.sessions_degraded
        );
        for (f, s) in fleet.report.completions.iter().zip(solo.completions.iter()) {
            prop_assert_eq!(f.id, s.id);
            prop_assert_eq!(
                f.result.log.fidelity(),
                s.result.log.fidelity(),
                "q{}: fidelity must match the solo run",
                f.id
            );
            let mut f_lost = f.result.log.degradation.lost_chunks.clone();
            let mut s_lost = s.result.log.degradation.lost_chunks.clone();
            f_lost.sort_unstable();
            s_lost.sort_unstable();
            prop_assert_eq!(f_lost, s_lost, "q{}: lost sets must match", f.id);
            for (w, g) in s.result.neighbors.iter().zip(f.result.neighbors.iter()) {
                prop_assert_eq!(w.id, g.id);
                prop_assert_eq!(w.dist.to_bits(), g.dist.to_bits());
            }
        }
    }
}
