//! Image-query serving: one [`SearchSession`] per query descriptor,
//! interleaved chunk-by-chunk across sibling descriptors *and* across
//! concurrent image queries, with a cross-descriptor early-termination
//! rule.
//!
//! The [`ImageScheduler`] is the image-level twin of the per-descriptor
//! [`Scheduler`](crate::Scheduler): it shares the policies
//! ([`Policy`]), the byte-budgeted resident chunk cache, and the fleet
//! [`PipelineClock`]. The unit of admission is the image query; the unit
//! of scheduling stays the (descriptor session, chunk) pair, so
//! [`Policy::MostWantedChunk`] fans one chunk read out across *sibling
//! descriptors of the same image* as readily as across unrelated queries
//! — descriptors cropped from one image are near-duplicates, which is
//! exactly the co-scheduling opportunity.
//!
//! When a descriptor session completes, its retained neighbours are
//! folded into the image's [`ImageAggregator`]. If the image's
//! [`ImageStopRule`] then fires — the top-`m` image ranking has been
//! stable for `S` consecutive completions, or the vote margins prove the
//! prefix final — every sibling session still in flight is torn down and
//! booked as abandoned: the "fraction of the query points suffices"
//! trade-off, with `descriptors_spent + descriptors_abandoned ==`
//! set size always.
//!
//! Determinism carries over from the descriptor layer: per-descriptor
//! results are bit-identical to solo runs under any feeding order, and
//! the vote fold is commutative, so a run-to-completion image query is
//! bit-identical to [`solo_image_search`] under every policy — the
//! `image_equivalence` proptests pin this down.

use crate::error::{Result, ServeError};
use eff2_core::image::{ImageAggregator, ImageOutcome, ImageStopRule, DEFAULT_EVENT_TOP};
use eff2_core::search::{SearchParams, SearchResult};
use eff2_core::session::{ChunkRanking, SearchSession};
use eff2_core::snapshot::Snapshot;
use eff2_descriptor::Vector;
use eff2_storage::diskmodel::{PipelineClock, VirtualDuration};
use eff2_storage::source::{ResidentSource, ResidentStats};
use eff2_storage::store::ChunkReader;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

pub use crate::scheduler::Policy;
pub use eff2_core::image::solo_image_search;

/// One image query offered to the scheduler: a ground-truth label and
/// the descriptor set voting on its behalf.
#[derive(Clone, Debug, PartialEq)]
pub struct ImageQuerySpec {
    /// The query's source image (carried through to the outcome).
    pub label: u32,
    /// The query descriptors; one [`SearchSession`] is run per entry.
    pub descriptors: Vec<Vector>,
}

/// Image-scheduler knobs.
#[derive(Clone, Copy, Debug)]
pub struct ImageConfig {
    /// The chunk-pick policy, shared with the descriptor scheduler.
    pub policy: Policy,
    /// Image queries interleaved at once (each may hold many descriptor
    /// sessions). Clamped to a minimum of 1.
    pub max_active: usize,
    /// Admitted-but-waiting image queries beyond which
    /// [`ImageScheduler::submit`] returns [`ServeError::Overloaded`].
    pub max_queued: usize,
    /// Byte budget of the shared decoded-chunk cache.
    pub cache_budget_bytes: u64,
    /// Per-image virtual deadline, measured from arrival.
    pub deadline: VirtualDuration,
    /// The cross-descriptor early-termination rule.
    pub stop: ImageStopRule,
    /// Keep every absorbed per-descriptor [`SearchResult`] in the
    /// completion (`None` entries for abandoned descriptors). Off by
    /// default — the equivalence tests turn it on.
    pub keep_descriptor_results: bool,
}

impl ImageConfig {
    /// A config for `policy` at image concurrency `max_active` under
    /// `stop`, with a generous queue (4× the active slots), an 8 MiB
    /// chunk cache and a 2 s virtual deadline.
    pub fn new(policy: Policy, max_active: usize, stop: ImageStopRule) -> ImageConfig {
        let active = max_active.max(1);
        ImageConfig {
            policy,
            max_active: active,
            max_queued: active.saturating_mul(4),
            cache_budget_bytes: 8 << 20,
            deadline: VirtualDuration::from_secs(2.0),
            stop,
            keep_descriptor_results: false,
        }
    }
}

/// An image query waiting for an execution slot.
struct PendingImage {
    id: u64,
    label: u32,
    descriptors: Vec<Vector>,
    params: SearchParams,
    arrival: VirtualDuration,
}

/// An admitted image query whose descriptor sessions are in flight.
struct ImageInFlight {
    label: u32,
    arrival: VirtualDuration,
    deadline: VirtualDuration,
    agg: ImageAggregator,
    /// Absorbed per-descriptor results, indexed by descriptor position
    /// (`None` for abandoned descriptors). Only kept when
    /// [`ImageConfig::keep_descriptor_results`] is set.
    results: Option<Vec<Option<SearchResult>>>,
    /// Fleet-clock time of the latest absorbed completion.
    finish: VirtualDuration,
}

/// One descriptor session in flight, keyed by `(image id, descriptor
/// index)` in the scheduler's active map.
struct ActiveDesc {
    session: SearchSession,
    /// Cache-attribution tag with the shared [`ResidentSource`].
    requester: u64,
}

/// One finished image query.
#[derive(Clone, Debug)]
pub struct ImageCompletion {
    /// Submission order (0-based).
    pub id: u64,
    /// Virtual arrival time.
    pub arrival: VirtualDuration,
    /// Virtual deadline this image was held to.
    pub deadline: VirtualDuration,
    /// Fleet-clock time of the last absorbed descriptor completion.
    pub finish: VirtualDuration,
    /// The aggregated vote outcome.
    pub outcome: ImageOutcome,
    /// Per-descriptor results when
    /// [`ImageConfig::keep_descriptor_results`] was set (`None` entries
    /// for abandoned descriptors).
    pub descriptor_results: Option<Vec<Option<SearchResult>>>,
}

impl ImageCompletion {
    /// Arrival-to-finish latency on the fleet clock.
    pub fn latency(&self) -> VirtualDuration {
        self.finish - self.arrival
    }
}

/// Fleet-level counters for an image-scheduler run.
#[derive(Clone, Debug, Default)]
pub struct ImageServeStats {
    /// Image queries offered to [`ImageScheduler::submit`].
    pub submitted: u64,
    /// Image queries refused by admission control.
    pub rejected: u64,
    /// Image queries finished.
    pub completed: u64,
    /// Scheduling ticks (= chunk fetches issued).
    pub ticks: u64,
    /// Chunk deliveries from the shared source.
    pub fetches: u64,
    /// Fetches that went to the disk (the rest were cache hits).
    pub disk_reads: u64,
    /// Descriptor-session feeds (total `step_with` calls).
    pub feeds: u64,
    /// Descriptor sessions run to completion and absorbed.
    pub descriptors_spent: u64,
    /// Descriptor sessions torn down by a fired image stop rule.
    pub descriptors_abandoned: u64,
    /// Completions whose finish exceeded their deadline.
    pub deadline_misses: u64,
    /// Completions whose aggregate fidelity was `Degraded`.
    pub images_degraded: u64,
    /// Shared chunk-cache counters.
    pub cache: ResidentStats,
}

/// Everything a finished image-scheduler run produced.
#[derive(Clone, Debug)]
pub struct ImageServeReport {
    /// Per-image completions, sorted by submission id.
    pub completions: Vec<ImageCompletion>,
    /// Fleet counters.
    pub stats: ImageServeStats,
    /// Fleet-clock time at which the last image finished.
    pub makespan: VirtualDuration,
}

impl ImageServeReport {
    /// Completed image queries per virtual second (0 for an empty run).
    pub fn throughput_qps(&self) -> f64 {
        let secs = self.makespan.as_secs();
        if secs > 0.0 {
            self.stats.completed as f64 / secs
        } else {
            0.0
        }
    }
}

/// The interleaved image-query scheduler. See the [module docs](self).
pub struct ImageScheduler {
    snapshot: Snapshot,
    config: ImageConfig,
    /// Descriptor id → image id, shared by every query's vote fold.
    image_of: Arc<Vec<u32>>,
    source: ResidentSource,
    /// One lazily-opened chunk reader reused across every cache miss.
    reader: Option<ChunkReader>,
    /// The shared device: disk + scan CPU every session contends for.
    clock: PipelineClock,
    last_arrival: VirtualDuration,
    next_id: u64,
    pending: VecDeque<PendingImage>,
    /// Admitted images still collecting completions.
    images: BTreeMap<u64, ImageInFlight>,
    /// Descriptor sessions in flight, keyed `(image id, descriptor
    /// index)` — BTreeMap order is admission order, then descriptor
    /// order, which every policy tie-break inherits.
    active: BTreeMap<(u64, u32), ActiveDesc>,
    /// Last session served by [`Policy::FairShare`].
    fair_cursor: (u64, u32),
    /// Ranking buffers recycled from retired sessions.
    spare_rankings: Vec<ChunkRanking>,
    completions: Vec<ImageCompletion>,
    stats: ImageServeStats,
}

impl ImageScheduler {
    /// A scheduler over `snapshot` with `config`, voting through the
    /// `image_of` descriptor→image map.
    pub fn new(snapshot: Snapshot, config: ImageConfig, image_of: Arc<Vec<u32>>) -> ImageScheduler {
        let source = snapshot.resident_source(config.cache_budget_bytes);
        let config = ImageConfig {
            max_active: config.max_active.max(1),
            ..config
        };
        ImageScheduler {
            snapshot,
            config,
            image_of,
            source,
            reader: None,
            clock: PipelineClock::start_at(VirtualDuration::ZERO),
            last_arrival: VirtualDuration::ZERO,
            next_id: 0,
            pending: VecDeque::new(),
            images: BTreeMap::new(),
            active: BTreeMap::new(),
            fair_cursor: (u64::MAX, u32::MAX),
            spare_rankings: Vec::new(),
            completions: Vec::new(),
            stats: ImageServeStats::default(),
        }
    }

    /// Image queries waiting for a slot.
    pub fn queued(&self) -> usize {
        self.pending.len()
    }

    /// Image queries currently interleaved.
    pub fn active_images(&self) -> usize {
        self.images.len()
    }

    /// Descriptor sessions currently in flight.
    pub fn active_sessions(&self) -> usize {
        self.active.len()
    }

    /// The fleet clock.
    pub fn now(&self) -> VirtualDuration {
        self.clock.now()
    }

    /// Offers one image query arriving at virtual time `arrival`, with
    /// `params` governing each of its descriptor searches. Returns the
    /// image's id, or [`ServeError::Overloaded`] if the wait queue is
    /// full (the query is counted as rejected and the run continues).
    pub fn submit(
        &mut self,
        spec: &ImageQuerySpec,
        params: &SearchParams,
        arrival: VirtualDuration,
    ) -> Result<u64> {
        if arrival.as_secs() < self.last_arrival.as_secs() {
            return Err(ServeError::NonMonotoneArrival {
                prev_secs: self.last_arrival.as_secs(),
                next_secs: arrival.as_secs(),
            });
        }
        self.last_arrival = arrival;
        self.stats.submitted += 1;
        self.advance_to(arrival)?;
        if self.images.len() >= self.config.max_active
            && self.pending.len() >= self.config.max_queued
        {
            self.stats.rejected += 1;
            return Err(ServeError::Overloaded {
                queued: self.pending.len(),
                capacity: self.config.max_queued,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push_back(PendingImage {
            id,
            label: spec.label,
            descriptors: spec.descriptors.clone(),
            params: *params,
            arrival,
        });
        self.catch_up();
        Ok(id)
    }

    /// Drains every admitted image query and returns the report.
    pub fn finish(mut self) -> Result<ImageServeReport> {
        loop {
            self.catch_up();
            if self.active.is_empty() {
                if self.pending.is_empty() {
                    break;
                }
                continue; // instant completions drained a wave; re-admit
            }
            self.tick()?;
        }
        debug_assert!(
            self.images.is_empty(),
            "an image with no live sessions must have retired"
        );
        let makespan = self
            .completions
            .iter()
            .map(|c| c.finish)
            .fold(VirtualDuration::ZERO, VirtualDuration::max);
        self.stats.cache = self.source.stats();
        let mut completions = std::mem::take(&mut self.completions);
        completions.sort_by_key(|c| c.id);
        Ok(ImageServeReport {
            completions,
            stats: self.stats,
            makespan,
        })
    }

    /// Submits a whole trace of `(spec, arrival)` pairs (already in
    /// arrival order) and drains. Overload rejections are recorded
    /// rather than aborting the run.
    pub fn serve_trace(
        mut self,
        trace: &[(ImageQuerySpec, VirtualDuration)],
        params: &SearchParams,
    ) -> Result<ImageServeReport> {
        for (spec, arrival) in trace {
            match self.submit(spec, params, *arrival) {
                Ok(_) | Err(ServeError::Overloaded { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        self.finish()
    }

    /// Processes backlog until the fleet clock reaches `t` (or there is
    /// nothing left to do before `t`).
    fn advance_to(&mut self, t: VirtualDuration) -> Result<()> {
        loop {
            self.catch_up();
            if self.active.is_empty() {
                if self.pending.is_empty() {
                    break;
                }
                continue;
            }
            if self.clock.now().as_secs() >= t.as_secs() {
                break;
            }
            self.tick()?;
        }
        Ok(())
    }

    /// Admits eligible pending images; when idle, jumps the fleet clock
    /// forward to the next arrival first.
    fn catch_up(&mut self) {
        self.admit_eligible();
        if self.active.is_empty() {
            if let Some(front) = self.pending.front() {
                if front.arrival.as_secs() > self.clock.now().as_secs() {
                    self.clock = PipelineClock::start_at(front.arrival);
                }
            }
            self.admit_eligible();
        }
    }

    /// Moves pending images whose arrival has passed into active slots.
    fn admit_eligible(&mut self) {
        while self.images.len() < self.config.max_active {
            let eligible = self
                .pending
                .front()
                .is_some_and(|p| p.arrival.as_secs() <= self.clock.now().as_secs());
            if !eligible {
                break;
            }
            let Some(p) = self.pending.pop_front() else {
                break;
            };
            self.admit(p);
        }
    }

    /// Admits one image: ranks each descriptor (charging its chunk-index
    /// ranking CPU on the fleet clock), opens its session, and absorbs
    /// any session that completes without reading a chunk (`k = 0`, an
    /// empty index). Completions absorbed here run the stop rule exactly
    /// like mid-flight ones, so a rule that fires during admission
    /// abandons the not-yet-opened descriptors too.
    fn admit(&mut self, p: PendingImage) {
        let deadline = p.arrival + self.config.deadline;
        let mut flight = ImageInFlight {
            label: p.label,
            arrival: p.arrival,
            deadline,
            agg: ImageAggregator::new(
                Arc::clone(&self.image_of),
                p.params.k,
                p.descriptors.len(),
                self.config.stop,
                DEFAULT_EVENT_TOP,
            ),
            results: self
                .config
                .keep_descriptor_results
                .then(|| (0..p.descriptors.len()).map(|_| None).collect()),
            finish: self.clock.now(),
        };
        let mut opened: Vec<(u64, u32)> = Vec::new();
        let mut stopped = false;
        for (d, q) in p.descriptors.iter().enumerate() {
            if stopped {
                break;
            }
            let mut ranking = self.spare_rankings.pop().unwrap_or_default();
            self.snapshot.rank_into(&mut ranking, q);
            let rank_cpu = self.snapshot.model().rank_time(self.snapshot.n_chunks());
            let ranked_at = self.clock.chunk_overlapped(VirtualDuration::ZERO, rank_cpu);
            let session = self.snapshot.session_from_ranking(ranking, q, &p.params);
            if session.stop_satisfied() || session.next_wanted().is_none() {
                // Done without reading anything: absorb right here.
                let (result, ranking) = session.into_result_and_ranking();
                self.spare_rankings.push(ranking);
                stopped =
                    Self::absorb_into(&mut flight, &mut self.stats, d as u32, result, ranked_at);
            } else {
                let key = (p.id, d as u32);
                opened.push(key);
                self.active.insert(
                    key,
                    ActiveDesc {
                        session,
                        requester: self.source.new_requester(),
                    },
                );
            }
            flight.finish = flight.finish.max(ranked_at);
        }
        if stopped {
            self.teardown_siblings(p.id, &opened, &mut flight);
        }
        if flight.agg.is_done() {
            let finish = flight.finish;
            self.retire(p.id, flight, finish);
        } else {
            self.images.insert(p.id, flight);
        }
    }

    /// One scheduling step: pick a chunk by policy, fetch it once, feed
    /// every selected session, absorb the completed ones (which may fire
    /// the image stop rule and tear down siblings mid-tick).
    fn tick(&mut self) -> Result<()> {
        let Some((chunk_id, fed_keys)) = self.pick() else {
            return Ok(());
        };
        if self.config.policy == Policy::FairShare {
            if let Some(key) = fed_keys.first() {
                self.fair_cursor = *key;
            }
        }
        let requester = fed_keys
            .first()
            .and_then(|key| self.active.get(key))
            .map_or(0, |a| a.requester);
        let fetched = self
            .source
            .fetch_through(requester, chunk_id, &mut self.reader)?;
        self.stats.ticks += 1;
        self.stats.fetches += 1;
        if fetched.from_disk {
            self.stats.disk_reads += 1;
        }

        // Fleet device: the chunk's I/O (nothing on a cache hit)
        // overlaps the previous tick's CPU; the fanned-out scans are
        // CPU, one per fed session, summed in key order.
        let io = if fetched.from_disk {
            self.snapshot.model().io_time(fetched.chunk.bytes_read)
        } else {
            VirtualDuration::ZERO
        };
        let scan = self.snapshot.model().scan_time(fetched.chunk.payload.len());
        let mut cpu = VirtualDuration::ZERO;
        for _ in &fed_keys {
            cpu += scan;
        }
        let done = self.clock.chunk_overlapped(io, cpu);

        for key in fed_keys {
            // A fired stop rule may have torn this sibling down earlier
            // in the same tick; the `else` arm is that abandonment.
            let Some(a) = self.active.get_mut(&key) else {
                continue;
            };
            a.session.step_with(&fetched.chunk)?;
            self.stats.feeds += 1;
            let finished = a.session.stop_satisfied() || a.session.next_wanted().is_none();
            if finished {
                if let Some(a) = self.active.remove(&key) {
                    self.complete_descriptor(key, a, done);
                }
            }
        }
        Ok(())
    }

    /// Books one completed descriptor session: absorb its result into
    /// the image's aggregator, run the stop rule, tear down siblings if
    /// it fires, and retire the image once every descriptor is
    /// accounted for.
    fn complete_descriptor(&mut self, key: (u64, u32), active: ActiveDesc, done: VirtualDuration) {
        let (img, d) = key;
        let (result, ranking) = active.session.into_result_and_ranking();
        self.spare_rankings.push(ranking);
        let Some(mut flight) = self.images.remove(&img) else {
            debug_assert!(false, "completed session {key:?} has no image in flight");
            return;
        };
        let fired = Self::absorb_into(&mut flight, &mut self.stats, d, result, done);
        if fired {
            self.teardown_siblings(img, &[], &mut flight);
        }
        if flight.agg.is_done() {
            self.retire(img, flight, done);
        } else {
            self.images.insert(img, flight);
        }
    }

    /// The shared absorption step (admission-time and mid-flight):
    /// record the result, update counters, run the stop rule. Returns
    /// whether the rule fired. Associated (not `&mut self`) so callers
    /// holding a flight borrowed out of the images map can use it.
    fn absorb_into(
        flight: &mut ImageInFlight,
        stats: &mut ImageServeStats,
        d: u32,
        result: SearchResult,
        done: VirtualDuration,
    ) -> bool {
        stats.descriptors_spent += 1;
        flight.finish = flight.finish.max(done);
        let fired = flight.agg.absorb(&result);
        if let Some(slots) = flight.results.as_mut() {
            if let Some(slot) = slots.get_mut(d as usize) {
                *slot = Some(result);
            }
        }
        fired
    }

    /// Tears down every live sibling session of image `img` (both those
    /// in the global active map and `extra` keys opened during an
    /// admission still in progress) and books the abandonment.
    fn teardown_siblings(&mut self, img: u64, extra: &[(u64, u32)], flight: &mut ImageInFlight) {
        let keys: Vec<(u64, u32)> = self
            .active
            .range((img, 0)..=(img, u32::MAX))
            .map(|(k, _)| *k)
            .chain(extra.iter().copied())
            .collect();
        for key in keys {
            if let Some(a) = self.active.remove(&key) {
                // Recycle the abandoned session's ranking buffers; its
                // partial result is discarded, not absorbed.
                let (_, ranking) = a.session.into_result_and_ranking();
                self.spare_rankings.push(ranking);
            }
        }
        let dropped = flight.agg.abandon_rest();
        self.stats.descriptors_abandoned += dropped as u64;
    }

    /// Which chunk to serve this tick, and to which descriptor sessions.
    fn pick(&self) -> Option<(usize, Vec<(u64, u32)>)> {
        match self.config.policy {
            Policy::FairShare => {
                let key = self
                    .active
                    .range((
                        std::ops::Bound::Excluded(self.fair_cursor),
                        std::ops::Bound::Unbounded,
                    ))
                    .map(|(k, _)| *k)
                    .next()
                    .or_else(|| self.active.keys().next().copied())?;
                let a = self.active.get(&key)?;
                Some((a.session.next_wanted()?, vec![key]))
            }
            Policy::EarliestDeadline => {
                // Key: (image deadline, remaining-work estimate, key) —
                // the image-level reading of the descriptor scheduler's
                // tie-break: a nearly-done descriptor slips past an
                // equal-deadline scan-everything one.
                let mut best: Option<((u64, u32), f64, usize)> = None;
                for (key, a) in &self.active {
                    let Some(flight) = self.images.get(&key.0) else {
                        continue;
                    };
                    let d = flight.deadline.as_secs();
                    let w = a.session.remaining_work_estimate();
                    let better = match best {
                        None => true,
                        Some((_, bd, bw)) => match d.total_cmp(&bd) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Equal => w < bw,
                            std::cmp::Ordering::Greater => false,
                        },
                    };
                    if better {
                        best = Some((*key, d, w));
                    }
                }
                let (key, _, _) = best?;
                let a = self.active.get(&key)?;
                Some((a.session.next_wanted()?, vec![key]))
            }
            Policy::MostWantedChunk => {
                let mut wanted: BTreeMap<usize, Vec<(u64, u32)>> = BTreeMap::new();
                for (key, a) in &self.active {
                    if let Some(c) = a.session.next_wanted() {
                        wanted.entry(c).or_default().push(*key);
                    }
                }
                let mut best: Option<(usize, usize)> = None;
                for (c, keys) in &wanted {
                    let better = match best {
                        None => true,
                        Some((_, n)) => keys.len() > n,
                    };
                    if better {
                        best = Some((*c, keys.len()));
                    }
                }
                let (chunk, _) = best?;
                let keys = wanted.remove(&chunk)?;
                Some((chunk, keys))
            }
        }
    }

    /// Books a finished image at fleet time `finish`.
    fn retire(&mut self, id: u64, flight: ImageInFlight, finish: VirtualDuration) {
        self.stats.completed += 1;
        if finish.as_secs() > flight.deadline.as_secs() {
            self.stats.deadline_misses += 1;
        }
        let outcome = flight.agg.into_outcome(flight.label);
        if outcome.fidelity == eff2_core::search::ResultFidelity::Degraded {
            self.stats.images_degraded += 1;
        }
        self.completions.push(ImageCompletion {
            id,
            arrival: flight.arrival,
            deadline: flight.deadline,
            finish,
            outcome,
            descriptor_results: flight.results,
        });
    }
}

impl std::fmt::Debug for ImageScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ImageScheduler")
            .field("policy", &self.config.policy)
            .field("stop", &self.config.stop)
            .field("active_images", &self.images.len())
            .field("active_sessions", &self.active.len())
            .field("queued", &self.pending.len())
            .field("completed", &self.stats.completed)
            .field("now", &self.clock.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eff2_core::chunkers::{ChunkFormer, SrTreeChunker};
    use eff2_core::index::ChunkIndex;
    use eff2_descriptor::{Descriptor, DescriptorSet};
    use eff2_storage::diskmodel::DiskModel;
    use eff2_storage::ChunkStore;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eff2_imgserve_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn lumpy_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| {
                let blob = (i % 5) as f32 * 20.0;
                let mut v = Vector::splat(blob);
                v[0] += ((i * 31) % 23) as f32 * 0.3;
                v[3] -= ((i * 17) % 19) as f32 * 0.2;
                Descriptor::new(i as u32, v)
            })
            .collect()
    }

    fn snapshot(tag: &str, n: usize, leaf: usize) -> (Snapshot, DescriptorSet) {
        let set = lumpy_set(n);
        let formation = SrTreeChunker { leaf_size: leaf }.form(&set);
        let store =
            ChunkStore::create(&tmp_dir(tag), "s", &set, &formation.chunks, 512).expect("create");
        (
            ChunkIndex::from_store(store, DiskModel::ata_2005()).snapshot(),
            set,
        )
    }

    /// Round-robin image map: descriptor i belongs to image i % n_images.
    fn rr_map(n: usize, n_images: u32) -> Arc<Vec<u32>> {
        Arc::new((0..n).map(|i| (i as u32) % n_images).collect())
    }

    fn spec(set: &DescriptorSet, label: u32, positions: &[usize]) -> ImageQuerySpec {
        ImageQuerySpec {
            label,
            descriptors: positions.iter().map(|&p| set.vector_owned(p)).collect(),
        }
    }

    fn assert_same_ranking(
        want: &[eff2_core::image::ImageVote],
        got: &[eff2_core::image::ImageVote],
        tag: &str,
    ) {
        assert_eq!(want.len(), got.len(), "{tag}: ranking length");
        for (w, g) in want.iter().zip(got.iter()) {
            assert_eq!(w.image, g.image, "{tag}: image");
            assert_eq!(w.votes, g.votes, "{tag}: votes");
            assert_eq!(
                w.best_dist.to_bits(),
                g.best_dist.to_bits(),
                "{tag}: best_dist"
            );
        }
    }

    #[test]
    fn run_all_matches_solo_under_every_policy() {
        let (snap, set) = snapshot("runall", 600, 30);
        let image_of = rr_map(set.len(), 24);
        let params = SearchParams::exact(6);
        let specs: Vec<ImageQuerySpec> = (0..4)
            .map(|i| {
                spec(
                    &set,
                    i,
                    &[i as usize * 7, i as usize * 7 + 24, i as usize * 7 + 48],
                )
            })
            .collect();
        let solo: Vec<_> = specs
            .iter()
            .map(|s| {
                solo_image_search(&snap, s.label, &s.descriptors, &params, &image_of).expect("solo")
            })
            .collect();
        for policy in Policy::ALL {
            let mut config = ImageConfig::new(policy, 2, ImageStopRule::RunAll);
            config.keep_descriptor_results = true;
            let trace: Vec<(ImageQuerySpec, VirtualDuration)> = specs
                .iter()
                .enumerate()
                .map(|(i, s)| (s.clone(), VirtualDuration::from_ms(i as f64)))
                .collect();
            let report = ImageScheduler::new(snap.clone(), config, Arc::clone(&image_of))
                .serve_trace(&trace, &params)
                .expect("serve");
            assert_eq!(report.completions.len(), specs.len());
            for (c, (want, _)) in report.completions.iter().zip(solo.iter()) {
                assert_same_ranking(
                    &want.ranking,
                    &c.outcome.ranking,
                    &format!("{}/img{}", policy.name(), c.id),
                );
                assert_eq!(c.outcome.descriptors_abandoned, 0);
                assert!(c.outcome.certificate);
            }
        }
    }

    #[test]
    fn empty_descriptor_set_completes_exact_and_empty() {
        let (snap, set) = snapshot("empty", 200, 25);
        let image_of = rr_map(set.len(), 8);
        let params = SearchParams::exact(4);
        let config = ImageConfig::new(
            Policy::MostWantedChunk,
            2,
            ImageStopRule::StableTop { m: 5, window: 1 },
        );
        let trace = vec![(
            ImageQuerySpec {
                label: 3,
                descriptors: Vec::new(),
            },
            VirtualDuration::ZERO,
        )];
        let report = ImageScheduler::new(snap, config, image_of)
            .serve_trace(&trace, &params)
            .expect("serve");
        assert_eq!(report.stats.completed, 1);
        assert_eq!(report.stats.fetches, 0);
        let Some(c) = report.completions.first() else {
            panic!("one completion expected");
        };
        assert!(c.outcome.ranking.is_empty());
        assert_eq!(c.outcome.descriptors_total, 0);
        assert_eq!(c.outcome.descriptors_spent, 0);
        assert_eq!(c.outcome.descriptors_abandoned, 0);
        assert_eq!(c.outcome.fidelity, eff2_core::search::ResultFidelity::Exact);
        assert!(c.outcome.certificate);
    }

    #[test]
    fn k_zero_completes_without_reading_and_accounting_holds() {
        let (snap, set) = snapshot("kzero", 200, 25);
        let image_of = rr_map(set.len(), 8);
        let params = SearchParams {
            k: 0,
            ..SearchParams::exact(0)
        };
        // A stable-empty ranking fires the stop rule after the window;
        // everything still sums.
        let config = ImageConfig::new(
            Policy::FairShare,
            2,
            ImageStopRule::StableTop { m: 5, window: 1 },
        );
        let trace = vec![(spec(&set, 1, &[0, 8, 16, 24, 32]), VirtualDuration::ZERO)];
        let report = ImageScheduler::new(snap, config, image_of)
            .serve_trace(&trace, &params)
            .expect("serve");
        assert_eq!(report.stats.completed, 1);
        assert_eq!(report.stats.fetches, 0, "k = 0 reads nothing");
        let Some(c) = report.completions.first() else {
            panic!("one completion expected");
        };
        assert!(c.outcome.ranking.is_empty());
        assert_eq!(
            c.outcome.descriptors_spent + c.outcome.descriptors_abandoned,
            c.outcome.descriptors_total
        );
        assert!(
            c.outcome.descriptors_abandoned > 0,
            "the stable-empty prefix must fire during admission"
        );
    }

    #[test]
    fn single_descriptor_image_is_bit_identical_to_plain_search() {
        let (snap, set) = snapshot("single", 400, 30);
        let image_of = rr_map(set.len(), 16);
        let params = SearchParams::exact(5);
        let q = set.vector_owned(33);
        let want = snap.search(&q, &params).expect("plain search");
        for stop in [
            ImageStopRule::RunAll,
            ImageStopRule::StableTop { m: 3, window: 1 },
            ImageStopRule::CertifiedTop { m: 3 },
        ] {
            let mut config = ImageConfig::new(Policy::EarliestDeadline, 2, stop);
            config.keep_descriptor_results = true;
            let trace = vec![(spec(&set, 9, &[33]), VirtualDuration::ZERO)];
            let report = ImageScheduler::new(snap.clone(), config, Arc::clone(&image_of))
                .serve_trace(&trace, &params)
                .expect("serve");
            let Some(c) = report.completions.first() else {
                panic!("one completion expected");
            };
            assert_eq!(c.outcome.descriptors_spent, 1);
            assert_eq!(c.outcome.descriptors_abandoned, 0, "{}", stop.label());
            let Some(results) = c.descriptor_results.as_ref() else {
                panic!("descriptor results were kept");
            };
            let Some(Some(got)) = results.first() else {
                panic!("descriptor 0 was absorbed");
            };
            assert_eq!(want.neighbors.len(), got.neighbors.len());
            for (w, g) in want.neighbors.iter().zip(got.neighbors.iter()) {
                assert_eq!(w.id, g.id, "{}", stop.label());
                assert_eq!(w.dist.to_bits(), g.dist.to_bits(), "{}", stop.label());
            }
            assert_eq!(
                want.log.total_virtual.as_secs().to_bits(),
                got.log.total_virtual.as_secs().to_bits(),
                "{}: per-descriptor virtual clock",
                stop.label()
            );
        }
    }

    #[test]
    fn all_duplicate_descriptors_early_stop_agrees_with_full_run() {
        let (snap, set) = snapshot("dups", 400, 30);
        let image_of = rr_map(set.len(), 16);
        let params = SearchParams::exact(5);
        // Eight copies of one descriptor: the ranking is fixed after the
        // first completion, so StableTop fires as early as it can.
        let positions = [11usize; 8];
        let full_trace = vec![(spec(&set, 2, &positions), VirtualDuration::ZERO)];
        let full = ImageScheduler::new(
            snap.clone(),
            ImageConfig::new(Policy::MostWantedChunk, 1, ImageStopRule::RunAll),
            Arc::clone(&image_of),
        )
        .serve_trace(&full_trace, &params)
        .expect("full");
        let early = ImageScheduler::new(
            snap.clone(),
            ImageConfig::new(
                Policy::MostWantedChunk,
                1,
                ImageStopRule::StableTop { m: 4, window: 1 },
            ),
            Arc::clone(&image_of),
        )
        .serve_trace(&full_trace, &params)
        .expect("early");
        let (Some(f), Some(e)) = (full.completions.first(), early.completions.first()) else {
            panic!("both runs complete");
        };
        assert!(e.outcome.descriptors_abandoned > 0, "early stop must fire");
        assert!(
            e.outcome.descriptors_spent < f.outcome.descriptors_spent,
            "early stop spends fewer descriptors"
        );
        // Duplicates scale every tally uniformly: the top-m prefix (and
        // here the whole membership order) is unchanged.
        assert_eq!(e.outcome.top_images(4), f.outcome.top_images(4));
        assert_eq!(
            e.outcome.fidelity,
            eff2_core::search::ResultFidelity::Approximate
        );
    }

    #[test]
    fn certified_stop_prefix_always_agrees_with_the_full_run() {
        let (snap, set) = snapshot("certified", 500, 30);
        let image_of = rr_map(set.len(), 10);
        let params = SearchParams::exact(4);
        let positions: Vec<usize> = (0..10).map(|i| (i * 10) % set.len()).collect();
        let make_trace = || vec![(spec(&set, 5, &positions), VirtualDuration::ZERO)];
        let full = ImageScheduler::new(
            snap.clone(),
            ImageConfig::new(Policy::FairShare, 1, ImageStopRule::RunAll),
            Arc::clone(&image_of),
        )
        .serve_trace(&make_trace(), &params)
        .expect("full");
        let m = 2usize;
        let early = ImageScheduler::new(
            snap.clone(),
            ImageConfig::new(Policy::FairShare, 1, ImageStopRule::CertifiedTop { m }),
            Arc::clone(&image_of),
        )
        .serve_trace(&make_trace(), &params)
        .expect("early");
        let (Some(f), Some(e)) = (full.completions.first(), early.completions.first()) else {
            panic!("both runs complete");
        };
        if e.outcome.descriptors_abandoned > 0 {
            assert!(e.outcome.certificate, "a certified stop records its proof");
            assert_eq!(e.outcome.top_images(m), f.outcome.top_images(m));
        }
    }

    #[test]
    fn overloaded_rejects_and_the_run_continues() {
        let (snap, set) = snapshot("overload", 300, 25);
        let image_of = rr_map(set.len(), 8);
        let params = SearchParams::exact(4);
        let mut config = ImageConfig::new(Policy::FairShare, 1, ImageStopRule::RunAll);
        config.max_queued = 1;
        let mut sched = ImageScheduler::new(snap, config, image_of);
        let s = spec(&set, 0, &[0, 5]);
        let t0 = VirtualDuration::ZERO;
        sched.submit(&s, &params, t0).expect("first admitted");
        sched.submit(&s, &params, t0).expect("second queued");
        let third = sched.submit(&s, &params, t0);
        assert!(matches!(third, Err(ServeError::Overloaded { .. })));
        let report = sched.finish().expect("finish");
        assert_eq!(report.stats.submitted, 3);
        assert_eq!(report.stats.rejected, 1);
        assert_eq!(report.stats.completed, 2);
    }

    #[test]
    fn non_monotone_arrivals_are_refused() {
        let (snap, set) = snapshot("monotone", 200, 25);
        let image_of = rr_map(set.len(), 8);
        let params = SearchParams::exact(3);
        let mut sched = ImageScheduler::new(
            snap,
            ImageConfig::new(Policy::FairShare, 2, ImageStopRule::RunAll),
            image_of,
        );
        sched
            .submit(
                &spec(&set, 0, &[0]),
                &params,
                VirtualDuration::from_secs(1.0),
            )
            .expect("submit");
        let out = sched.submit(
            &spec(&set, 1, &[1]),
            &params,
            VirtualDuration::from_secs(0.5),
        );
        assert!(matches!(out, Err(ServeError::NonMonotoneArrival { .. })));
    }

    #[test]
    fn sibling_fanout_shares_fetches_under_most_wanted_chunk() {
        let (snap, set) = snapshot("fanout", 800, 30);
        let image_of = rr_map(set.len(), 4);
        let params = SearchParams::exact(8);
        // Sibling descriptors from one blob: nearly identical interests.
        let positions: Vec<usize> = (0..8).map(|i| i * 5).collect();
        let trace = vec![(spec(&set, 1, &positions), VirtualDuration::ZERO)];
        let run = |policy: Policy| {
            ImageScheduler::new(
                snap.clone(),
                ImageConfig::new(policy, 1, ImageStopRule::RunAll),
                Arc::clone(&image_of),
            )
            .serve_trace(&trace, &params)
            .expect("serve")
        };
        let fair = run(Policy::FairShare);
        let mwc = run(Policy::MostWantedChunk);
        assert_eq!(fair.stats.feeds, mwc.stats.feeds, "same per-session work");
        assert!(
            mwc.stats.fetches < fair.stats.fetches,
            "sibling co-scheduling must share reads: mwc {} vs fair {}",
            mwc.stats.fetches,
            fair.stats.fetches
        );
        assert!(mwc.stats.feeds > mwc.stats.fetches, "some tick fanned out");
    }

    #[test]
    fn stats_sums_match_per_image_accounting() {
        let (snap, set) = snapshot("sums", 500, 30);
        let image_of = rr_map(set.len(), 12);
        let params = SearchParams::exact(5);
        let trace: Vec<(ImageQuerySpec, VirtualDuration)> = (0..5u32)
            .map(|i| {
                (
                    spec(
                        &set,
                        i,
                        &[
                            (i as usize * 13) % 500,
                            (i as usize * 29) % 500,
                            (i as usize * 7) % 500,
                        ],
                    ),
                    VirtualDuration::from_ms(i as f64 * 2.0),
                )
            })
            .collect();
        let report = ImageScheduler::new(
            snap,
            ImageConfig::new(
                Policy::MostWantedChunk,
                3,
                ImageStopRule::StableTop { m: 3, window: 1 },
            ),
            image_of,
        )
        .serve_trace(&trace, &params)
        .expect("serve");
        let mut spent = 0u64;
        let mut abandoned = 0u64;
        for c in &report.completions {
            assert_eq!(
                c.outcome.descriptors_spent + c.outcome.descriptors_abandoned,
                c.outcome.descriptors_total,
                "img{}",
                c.id
            );
            spent += c.outcome.descriptors_spent as u64;
            abandoned += c.outcome.descriptors_abandoned as u64;
        }
        assert_eq!(spent, report.stats.descriptors_spent);
        assert_eq!(abandoned, report.stats.descriptors_abandoned);
    }
}
