#![warn(missing_docs)]

//! # eff2-serve
//!
//! The multi-query serving layer: many concurrent searches over one chunk
//! index, interleaved *chunk by chunk* by a deterministic scheduler.
//!
//! The paper argues that the chunk is the natural granule of the search —
//! uniform chunks give predictable per-step cost. That is precisely what a
//! serving scheduler needs: with every query decomposed into same-sized
//! steps, the [`Scheduler`] can admit queries (bounded queue, an
//! [`Overloaded`](ServeError::Overloaded) error under pressure), track
//! per-session virtual deadlines, and pick each next chunk by
//! [`Policy`] — round-robin fairness, earliest-deadline-first, or
//! *most-wanted-chunk*, which serves the chunk the largest number of
//! in-flight sessions want next so one read (and one decoded payload)
//! feeds them all.
//!
//! The load-bearing property, proptested in `tests/determinism.rs`: no
//! matter the policy, the concurrency level, or the interleaving, every
//! per-query [`SearchResult`](eff2_core::SearchResult) is bit-identical to
//! running that query alone. Scheduling changes *when* work happens on the
//! shared device (latency, throughput), never what each query computes.

//!
//! The sharded extension lives in [`fleet`]: the same chunk index
//! partitioned across N shard nodes by an
//! [`eff2_shard::ShardMap`] (with R-way replication), queries served
//! scatter–gather with per-shard legs merged deterministically — every
//! merged answer bit-identical to the solo single-device run, and
//! replicated copies turning permanent chunk loss into failover.

//!
//! Serving under *live mutation* lives in [`live`]: a [`LiveServer`]
//! merges query and insert/delete arrivals on one fleet clock, pins each
//! session to an immutable epoch snapshot at admission, and pays the
//! online compactor's fold as ticks interleaved 1:1 with the serve path —
//! every completion stays bit-identical to a solo run against its pinned
//! epoch.

//!
//! Image-level queries live in [`image`]: an [`ImageScheduler`] runs one
//! descriptor session per query-set member (sharing most-wanted-chunk
//! fan-out across sibling descriptors), folds their neighbour sets into a
//! deterministic per-image vote ranking, and can abandon the remaining
//! siblings once the top-`m` image ranking is stable or provably final —
//! the paper's "a fraction of the query points suffices" trade-off lifted
//! to whole-image queries.

pub mod error;
pub mod fleet;
pub mod image;
pub mod live;
pub mod scheduler;

pub use error::{Result, ServeError};
pub use fleet::{FleetConfig, FleetReport, FleetScheduler, LossScope};
pub use image::{
    ImageCompletion, ImageConfig, ImageQuerySpec, ImageScheduler, ImageServeReport, ImageServeStats,
};
pub use live::{
    merge_timelines, CompactionPolicy, LiveCompletion, LiveEvent, LiveReport, LiveServer, LiveStats,
};
pub use scheduler::{Completion, Policy, Scheduler, SchedulerConfig, ServeReport, ServeStats};
