//! The interleaved session scheduler.
//!
//! One scheduler owns a fleet of concurrent [`SearchSession`]s over one
//! [`Snapshot`] and advances them *chunk by chunk*: each tick it picks one
//! chunk by policy, fetches it once through a shared [`ResidentSource`]
//! (single-flight + byte-budgeted cache), and feeds it to the session(s)
//! that want it via [`SearchSession::step_with`]. Because a session's own
//! virtual-clock accounting is identical whether it pulls chunks
//! ([`SearchSession::step`]) or is fed them, every per-query
//! [`SearchResult`] is bit-identical to running that query alone — the
//! scheduler only changes *fleet* timing (latency under load), never
//! per-query figures. The determinism proptest asserts exactly that.
//!
//! Two clocks run here:
//!
//! * each session's private clock: per-query cost as if the query ran
//!   alone — the paper's quality-vs-time figures;
//! * the fleet clock (a [`PipelineClock`] over the shared device): when
//!   each chunk's I/O and the fanned-out scans actually complete, which is
//!   what arrival-to-finish latency and throughput are measured on. Cache
//!   hits cost the fleet no I/O; every fed session costs its scan CPU.

use crate::error::{Result, ServeError};
use eff2_chaos::{Fault, FaultPlan, RetryPolicy};
use eff2_core::search::{SearchParams, SearchResult};
use eff2_core::session::{ChunkRanking, SearchSession};
use eff2_core::snapshot::Snapshot;
use eff2_descriptor::Vector;
use eff2_storage::diskmodel::{PipelineClock, VirtualDuration};
use eff2_storage::source::{Fetched, ResidentSource, ResidentStats};
use eff2_storage::store::ChunkReader;
use eff2_storage::ErrorClass;
use std::collections::{BTreeMap, VecDeque};

/// How each tick picks the next chunk to read and feed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Round-robin over active sessions: each tick serves the next
    /// session's wanted chunk. Fair, oblivious to sharing.
    FairShare,
    /// Serve the session with the earliest virtual deadline
    /// (arrival + configured deadline); ties break on the smallest
    /// remaining-work estimate (so a one-chunk query is not starved behind
    /// an equal-deadline scan-everything query), then on session id.
    EarliestDeadline,
    /// Serve the chunk wanted by the *most* active sessions, feeding all
    /// of them from one read: the chunk is fetched and decoded once and
    /// fanned out — each waiting session scans the shared payload through
    /// the lane kernels' block path. Ties break on the smallest chunk id.
    MostWantedChunk,
}

impl Policy {
    /// Every policy, in reporting order.
    pub const ALL: [Policy; 3] = [
        Policy::FairShare,
        Policy::EarliestDeadline,
        Policy::MostWantedChunk,
    ];

    /// Stable name for tables and CSV.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::FairShare => "fair-share",
            Policy::EarliestDeadline => "earliest-deadline",
            Policy::MostWantedChunk => "most-wanted-chunk",
        }
    }
}

/// Scheduler knobs.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// The chunk-pick policy.
    pub policy: Policy,
    /// Sessions interleaved at once (the concurrency level). Clamped to a
    /// minimum of 1.
    pub max_active: usize,
    /// Admitted-but-waiting queries beyond which [`Scheduler::submit`]
    /// returns [`ServeError::Overloaded`].
    pub max_queued: usize,
    /// Byte budget of the shared decoded-chunk cache.
    pub cache_budget_bytes: u64,
    /// Per-query virtual deadline, measured from arrival — the
    /// [`Policy::EarliestDeadline`] key and the
    /// [`ServeStats::deadline_misses`] threshold.
    pub deadline: VirtualDuration,
    /// Injected fault schedule applied to every fetch. `None` (the
    /// default) is the fault-free scheduler, bit-identical to a config
    /// that never mentions chaos.
    pub fault_plan: Option<FaultPlan>,
    /// How hard a failed fetch is retried before the chunk is abandoned
    /// and the waiting sessions skip it. Failed attempts are charged to
    /// the *fleet* clock per the policy's timeout/backoff.
    pub retry: RetryPolicy,
}

impl SchedulerConfig {
    /// A config for `policy` at concurrency `max_active`, with a generous
    /// queue (4× the active slots), an 8 MiB chunk cache and a 2 s virtual
    /// deadline.
    pub fn new(policy: Policy, max_active: usize) -> SchedulerConfig {
        let active = max_active.max(1);
        SchedulerConfig {
            policy,
            max_active: active,
            max_queued: active.saturating_mul(4),
            cache_budget_bytes: 8 << 20,
            deadline: VirtualDuration::from_secs(2.0),
            fault_plan: None,
            retry: RetryPolicy::none(),
        }
    }
}

/// A query waiting for an execution slot.
struct Pending {
    id: u64,
    query: Vector,
    params: SearchParams,
    arrival: VirtualDuration,
}

/// A query in flight.
struct Active {
    session: SearchSession,
    arrival: VirtualDuration,
    deadline: VirtualDuration,
    /// Cache-attribution tag with the shared [`ResidentSource`].
    requester: u64,
}

/// One finished query.
#[derive(Clone, Debug)]
pub struct Completion {
    /// Submission order (0-based).
    pub id: u64,
    /// Virtual arrival time.
    pub arrival: VirtualDuration,
    /// Virtual deadline this query was held to.
    pub deadline: VirtualDuration,
    /// Fleet-clock time at which the query's last chunk scan completed.
    pub finish: VirtualDuration,
    /// The per-query answer and log — bit-identical to a serial run.
    pub result: SearchResult,
}

impl Completion {
    /// Arrival-to-finish latency on the fleet clock.
    pub fn latency(&self) -> VirtualDuration {
        self.finish - self.arrival
    }
}

/// Fleet-level counters.
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Queries offered to [`Scheduler::submit`].
    pub submitted: u64,
    /// Queries refused by admission control.
    pub rejected: u64,
    /// Queries finished.
    pub completed: u64,
    /// Scheduling ticks (= chunk fetches issued).
    pub ticks: u64,
    /// Chunk deliveries from the shared source (one per tick).
    pub fetches: u64,
    /// Fetches that went to the disk (the rest were cache hits).
    pub disk_reads: u64,
    /// [`disk_reads`](Self::disk_reads) split by the shard node whose disk
    /// served the read, indexed by shard id. The single-device scheduler is
    /// a one-shard fleet: `vec![disk_reads]`.
    pub disk_reads_by_shard: Vec<u64>,
    /// Session feeds: total [`SearchSession::step_with`] calls. Equal
    /// across policies for one workload; `fetches` is what sharing
    /// shrinks.
    pub feeds: u64,
    /// Completions whose finish exceeded their deadline.
    pub deadline_misses: u64,
    /// Failed fetch attempts (injected or real) that were retried.
    pub fetch_retries: u64,
    /// Chunks declared lost after the retry budget ran out; every session
    /// waiting on one skipped it and continued degraded.
    pub chunks_abandoned: u64,
    /// Completions whose result lost at least one chunk.
    pub sessions_degraded: u64,
    /// Shared chunk-cache counters (hits, cross-query hits, evictions …).
    pub cache: ResidentStats,
}

/// Everything a finished scheduler run produced.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Per-query completions, sorted by submission id.
    pub completions: Vec<Completion>,
    /// Fleet counters.
    pub stats: ServeStats,
    /// Fleet-clock time at which the last query finished.
    pub makespan: VirtualDuration,
}

impl ServeReport {
    /// Completed queries per virtual second (0 for an empty run).
    pub fn throughput_qps(&self) -> f64 {
        let secs = self.makespan.as_secs();
        if secs > 0.0 {
            self.stats.completed as f64 / secs
        } else {
            0.0
        }
    }

    /// Fleet latencies in virtual seconds, sorted ascending.
    pub fn latencies_secs(&self) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .completions
            .iter()
            .map(|c| c.latency().as_secs())
            .collect();
        out.sort_by(f64::total_cmp);
        out
    }
}

/// The interleaved multi-query scheduler. See the [module docs](self).
///
/// Drive it with [`submit`](Self::submit) in arrival order, then
/// [`finish`](Self::finish) to drain; or hand it a whole trace via
/// [`serve_trace`](Self::serve_trace).
pub struct Scheduler {
    snapshot: Snapshot,
    config: SchedulerConfig,
    source: ResidentSource,
    /// One lazily-opened chunk reader reused across every cache miss.
    reader: Option<ChunkReader>,
    /// The shared device: disk + scan CPU the sessions contend for.
    clock: PipelineClock,
    last_arrival: VirtualDuration,
    next_id: u64,
    pending: VecDeque<Pending>,
    active: BTreeMap<u64, Active>,
    /// Last session id served by [`Policy::FairShare`].
    fair_cursor: u64,
    /// Ranking buffers recycled from retired sessions
    /// ([`ChunkRanking::rank_into`]).
    spare_rankings: Vec<ChunkRanking>,
    /// Fetch attempts per chunk under the injected [`FaultPlan`] —
    /// mirrors the counters a `FaultSource` keeps, so transient faults
    /// clear after the same number of retries here as in a serial run.
    chaos_attempts: BTreeMap<usize, u32>,
    completions: Vec<Completion>,
    stats: ServeStats,
}

/// What one [`Scheduler::acquire`] call produced.
enum Acquired {
    /// The chunk arrived; `injected` is modelled extra latency to charge
    /// the fleet device (spikes plus the cost of failed attempts).
    Delivered {
        fetched: Fetched,
        injected: VirtualDuration,
    },
    /// The retry budget ran out (or the loss is permanent): the chunk is
    /// gone and `spent` modelled time was burned finding that out.
    Lost { spent: VirtualDuration },
}

impl Scheduler {
    /// A scheduler over `snapshot` with `config`.
    pub fn new(snapshot: Snapshot, config: SchedulerConfig) -> Scheduler {
        let source = snapshot.resident_source(config.cache_budget_bytes);
        let config = SchedulerConfig {
            max_active: config.max_active.max(1),
            ..config
        };
        Scheduler {
            snapshot,
            config,
            source,
            reader: None,
            clock: PipelineClock::start_at(VirtualDuration::ZERO),
            last_arrival: VirtualDuration::ZERO,
            next_id: 0,
            pending: VecDeque::new(),
            active: BTreeMap::new(),
            fair_cursor: u64::MAX,
            spare_rankings: Vec::new(),
            chaos_attempts: BTreeMap::new(),
            completions: Vec::new(),
            stats: ServeStats::default(),
        }
    }

    /// Queries waiting for a slot.
    pub fn queued(&self) -> usize {
        self.pending.len()
    }

    /// Sessions currently interleaved.
    pub fn active(&self) -> usize {
        self.active.len()
    }

    /// The fleet clock.
    pub fn now(&self) -> VirtualDuration {
        self.clock.now()
    }

    /// Offers one query arriving at virtual time `arrival`. The scheduler
    /// first catches up — processing backlog until the fleet clock reaches
    /// the arrival — so admission control sees the queue as it stands *at*
    /// the arrival instant. Returns the query's id, or
    /// [`ServeError::Overloaded`] if the wait queue is full (the query is
    /// counted as rejected and the run continues).
    pub fn submit(
        &mut self,
        query: &Vector,
        params: &SearchParams,
        arrival: VirtualDuration,
    ) -> Result<u64> {
        if arrival.as_secs() < self.last_arrival.as_secs() {
            return Err(ServeError::NonMonotoneArrival {
                prev_secs: self.last_arrival.as_secs(),
                next_secs: arrival.as_secs(),
            });
        }
        self.last_arrival = arrival;
        self.stats.submitted += 1;
        self.advance_to(arrival)?;
        if self.active.len() >= self.config.max_active
            && self.pending.len() >= self.config.max_queued
        {
            self.stats.rejected += 1;
            return Err(ServeError::Overloaded {
                queued: self.pending.len(),
                capacity: self.config.max_queued,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push_back(Pending {
            id,
            query: *query,
            params: *params,
            arrival,
        });
        self.catch_up();
        Ok(id)
    }

    /// Drains every admitted query and returns the report.
    pub fn finish(mut self) -> Result<ServeReport> {
        loop {
            self.catch_up();
            if self.active.is_empty() {
                if self.pending.is_empty() {
                    break;
                }
                continue; // instant completions drained a wave; re-admit
            }
            self.tick()?;
        }
        let makespan = self
            .completions
            .iter()
            .map(|c| c.finish)
            .fold(VirtualDuration::ZERO, VirtualDuration::max);
        self.stats.cache = self.source.stats();
        self.stats.disk_reads_by_shard = vec![self.stats.disk_reads];
        let mut completions = std::mem::take(&mut self.completions);
        completions.sort_by_key(|c| c.id);
        Ok(ServeReport {
            completions,
            stats: self.stats,
            makespan,
        })
    }

    /// Submits a whole trace of `(query, arrival)` pairs (already in
    /// arrival order) and drains. Overload rejections are recorded in
    /// [`ServeStats::rejected`] rather than aborting the run.
    pub fn serve_trace(
        mut self,
        trace: &[(Vector, VirtualDuration)],
        params: &SearchParams,
    ) -> Result<ServeReport> {
        for (query, arrival) in trace {
            match self.submit(query, params, *arrival) {
                Ok(_) | Err(ServeError::Overloaded { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        self.finish()
    }

    /// Processes backlog until the fleet clock reaches `t` (or there is
    /// nothing left to do before `t`).
    fn advance_to(&mut self, t: VirtualDuration) -> Result<()> {
        loop {
            self.catch_up();
            if self.active.is_empty() {
                if self.pending.is_empty() {
                    break;
                }
                continue;
            }
            if self.clock.now().as_secs() >= t.as_secs() {
                break;
            }
            self.tick()?;
        }
        Ok(())
    }

    /// Admits eligible pending queries; when idle, jumps the fleet clock
    /// forward to the next arrival first.
    fn catch_up(&mut self) {
        self.admit_eligible();
        if self.active.is_empty() {
            if let Some(front) = self.pending.front() {
                if front.arrival.as_secs() > self.clock.now().as_secs() {
                    self.clock = PipelineClock::start_at(front.arrival);
                }
            }
            self.admit_eligible();
        }
    }

    /// Moves pending queries whose arrival has passed into active slots,
    /// charging each admission its chunk-index ranking CPU on the fleet
    /// clock (the index itself is memory-resident in the serving layer).
    fn admit_eligible(&mut self) {
        while self.active.len() < self.config.max_active {
            let eligible = self
                .pending
                .front()
                .is_some_and(|p| p.arrival.as_secs() <= self.clock.now().as_secs());
            if !eligible {
                break;
            }
            let Some(p) = self.pending.pop_front() else {
                break;
            };
            let mut ranking = self.spare_rankings.pop().unwrap_or_default();
            self.snapshot.rank_into(&mut ranking, &p.query);
            let rank_cpu = self.snapshot.model().rank_time(self.snapshot.n_chunks());
            let ranked_at = self.clock.chunk_overlapped(VirtualDuration::ZERO, rank_cpu);
            let session = self
                .snapshot
                .session_from_ranking(ranking, &p.query, &p.params);
            let active = Active {
                session,
                arrival: p.arrival,
                deadline: p.arrival + self.config.deadline,
                requester: self.source.new_requester(),
            };
            if active.session.stop_satisfied() || active.session.next_wanted().is_none() {
                // k = 0, an empty index, or a zero-chunk stop rule: done
                // without reading anything.
                self.retire(p.id, active, ranked_at);
            } else {
                self.active.insert(p.id, active);
            }
        }
    }

    /// One scheduling step: pick a chunk by policy, fetch it once, feed
    /// every selected session, retire the satisfied ones.
    fn tick(&mut self) -> Result<()> {
        let Some((chunk_id, fed_ids)) = self.pick() else {
            return Ok(());
        };
        if self.config.policy == Policy::FairShare {
            if let Some(id) = fed_ids.first() {
                self.fair_cursor = *id;
            }
        }
        let requester = fed_ids
            .first()
            .and_then(|id| self.active.get(id))
            .map_or(0, |a| a.requester);
        let (fetched, injected) = match self.acquire(requester, chunk_id)? {
            Acquired::Delivered { fetched, injected } => (fetched, injected),
            Acquired::Lost { spent } => {
                self.stats.ticks += 1;
                return self.abandon(chunk_id, &fed_ids, spent);
            }
        };
        self.stats.ticks += 1;
        self.stats.fetches += 1;
        if fetched.from_disk {
            self.stats.disk_reads += 1;
        }

        // Fleet device: the chunk's I/O (nothing on a cache hit) plus any
        // injected latency overlaps the previous tick's CPU; the
        // fanned-out scans are CPU, one per fed session, summed in
        // session-id order.
        let io = if fetched.from_disk {
            self.snapshot.model().io_time(fetched.chunk.bytes_read) + injected
        } else {
            injected
        };
        let scan = self.snapshot.model().scan_time(fetched.chunk.payload.len());
        let mut cpu = VirtualDuration::ZERO;
        for _ in &fed_ids {
            cpu += scan;
        }
        let done = self.clock.chunk_overlapped(io, cpu);

        for id in fed_ids {
            let Some(a) = self.active.get_mut(&id) else {
                continue;
            };
            a.session.step_with(&fetched.chunk)?;
            self.stats.feeds += 1;
            let finished = a.session.stop_satisfied() || a.session.next_wanted().is_none();
            if finished {
                if let Some(a) = self.active.remove(&id) {
                    self.retire(id, a, done);
                }
            }
        }
        Ok(())
    }

    /// Fetches `chunk_id` under the configured fault plan: injected
    /// faults and real read errors alike are retried per
    /// [`SchedulerConfig::retry`] — each failed attempt charged its
    /// timeout plus backoff to the modelled clock — until the chunk is
    /// delivered or declared lost. Without a plan this is the plain
    /// one-shot fetch.
    fn acquire(&mut self, requester: u64, chunk_id: usize) -> Result<Acquired> {
        let Some(plan) = self.config.fault_plan else {
            let fetched = self
                .source
                .fetch_through(requester, chunk_id, &mut self.reader)?;
            return Ok(Acquired::Delivered {
                fetched,
                injected: VirtualDuration::ZERO,
            });
        };
        let policy = self.config.retry;
        let mut attempts = 0u32;
        let mut spent = VirtualDuration::ZERO;
        loop {
            let attempt = {
                let slot = self.chaos_attempts.entry(chunk_id).or_insert(0);
                let attempt = *slot;
                *slot += 1;
                attempt
            };
            // The injected verdict first; a delivery then performs the
            // real read, whose own errors retry through the same budget.
            let verdict: std::result::Result<VirtualDuration, ErrorClass> =
                match plan.fault_for(chunk_id, attempt) {
                    Fault::Deliver { delay } => Ok(delay),
                    Fault::Permanent => Err(ErrorClass::Permanent),
                    Fault::Transient | Fault::ShortRead => Err(ErrorClass::Transient),
                    Fault::Corrupt => Err(ErrorClass::Corrupt),
                };
            let class = match verdict {
                Ok(delay) => {
                    match self
                        .source
                        .fetch_through(requester, chunk_id, &mut self.reader)
                    {
                        Ok(fetched) => {
                            return Ok(Acquired::Delivered {
                                fetched,
                                injected: spent + delay,
                            });
                        }
                        Err(e) => e.class(),
                    }
                }
                Err(class) => class,
            };
            spent += policy.attempt_cost(attempts);
            attempts += 1;
            if class == ErrorClass::Permanent || attempts >= policy.max_attempts {
                return Ok(Acquired::Lost { spent });
            }
            self.stats.fetch_retries += 1;
        }
    }

    /// Books a lost chunk: the wasted retry time is charged to the fleet
    /// device, every session waiting on the chunk skips it (recording the
    /// degradation), and sessions finished by the skip retire.
    fn abandon(&mut self, chunk_id: usize, fed_ids: &[u64], spent: VirtualDuration) -> Result<()> {
        self.stats.chunks_abandoned += 1;
        let done = self.clock.chunk_overlapped(spent, VirtualDuration::ZERO);
        for &id in fed_ids {
            let Some(a) = self.active.get_mut(&id) else {
                continue;
            };
            if a.session.next_wanted() != Some(chunk_id) {
                continue;
            }
            a.session.skip_unavailable(spent)?;
            let finished = a.session.stop_satisfied() || a.session.next_wanted().is_none();
            if finished {
                if let Some(a) = self.active.remove(&id) {
                    self.retire(id, a, done);
                }
            }
        }
        Ok(())
    }

    /// Which chunk to serve this tick, and to which sessions.
    fn pick(&self) -> Option<(usize, Vec<u64>)> {
        match self.config.policy {
            Policy::FairShare => {
                let id = self
                    .active
                    .range(self.fair_cursor.saturating_add(1)..)
                    .map(|(id, _)| *id)
                    .next()
                    .or_else(|| self.active.keys().next().copied())?;
                let a = self.active.get(&id)?;
                Some((a.session.next_wanted()?, vec![id]))
            }
            Policy::EarliestDeadline => {
                // Key: (deadline, remaining-work estimate, id). A pure
                // deadline key degenerates to FIFO whenever a burst shares
                // one arrival instant (every deadline ties, and ties on id
                // replay admission order); breaking ties by how little work
                // a session has left lets short queries slip past
                // equal-deadline long ones.
                let mut best: Option<(u64, f64, usize)> = None;
                for (id, a) in &self.active {
                    let d = a.deadline.as_secs();
                    let w = a.session.remaining_work_estimate();
                    let better = match best {
                        None => true,
                        Some((_, bd, bw)) => match d.total_cmp(&bd) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Equal => w < bw,
                            std::cmp::Ordering::Greater => false,
                        },
                    };
                    if better {
                        best = Some((*id, d, w));
                    }
                }
                let (id, _, _) = best?;
                let a = self.active.get(&id)?;
                Some((a.session.next_wanted()?, vec![id]))
            }
            Policy::MostWantedChunk => {
                let mut wanted: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
                for (id, a) in &self.active {
                    if let Some(c) = a.session.next_wanted() {
                        wanted.entry(c).or_default().push(*id);
                    }
                }
                let mut best: Option<(usize, usize)> = None;
                for (c, ids) in &wanted {
                    let better = match best {
                        None => true,
                        Some((_, n)) => ids.len() > n,
                    };
                    if better {
                        best = Some((*c, ids.len()));
                    }
                }
                let (chunk, _) = best?;
                let ids = wanted.remove(&chunk)?;
                Some((chunk, ids))
            }
        }
    }

    /// Books a finished session: recycle its ranking buffers, record the
    /// completion at fleet time `finish`.
    fn retire(&mut self, id: u64, active: Active, finish: VirtualDuration) {
        let (result, ranking) = active.session.into_result_and_ranking();
        self.spare_rankings.push(ranking);
        self.stats.completed += 1;
        if result.log.degradation.is_degraded() {
            self.stats.sessions_degraded += 1;
        }
        if finish.as_secs() > active.deadline.as_secs() {
            self.stats.deadline_misses += 1;
        }
        self.completions.push(Completion {
            id,
            arrival: active.arrival,
            deadline: active.deadline,
            finish,
            result,
        });
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("policy", &self.config.policy)
            .field("active", &self.active.len())
            .field("queued", &self.pending.len())
            .field("completed", &self.stats.completed)
            .field("now", &self.clock.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eff2_chaos::FaultConfig;
    use eff2_core::chunkers::{ChunkFormer, SrTreeChunker};
    use eff2_core::index::ChunkIndex;
    use eff2_core::search::StopRule;
    use eff2_descriptor::{Descriptor, DescriptorSet};
    use eff2_storage::diskmodel::DiskModel;
    use eff2_storage::ChunkStore;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eff2_serve_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn lumpy_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| {
                let blob = (i % 5) as f32 * 20.0;
                let mut v = Vector::splat(blob);
                v[0] += ((i * 31) % 23) as f32 * 0.3;
                v[3] -= ((i * 17) % 19) as f32 * 0.2;
                Descriptor::new(i as u32, v)
            })
            .collect()
    }

    fn snapshot(tag: &str, n: usize, leaf: usize) -> (Snapshot, DescriptorSet) {
        let set = lumpy_set(n);
        let formation = SrTreeChunker { leaf_size: leaf }.form(&set);
        let store =
            ChunkStore::create(&tmp_dir(tag), "s", &set, &formation.chunks, 512).expect("create");
        (
            ChunkIndex::from_store(store, DiskModel::ata_2005()).snapshot(),
            set,
        )
    }

    /// A trace of in-set queries with arrivals `gap_ms` apart.
    fn trace(set: &DescriptorSet, n: usize, gap_ms: f64) -> Vec<(Vector, VirtualDuration)> {
        (0..n)
            .map(|i| {
                let q = set.vector_owned((i * 37) % set.len());
                (q, VirtualDuration::from_ms(gap_ms * i as f64))
            })
            .collect()
    }

    fn assert_result_bits(want: &SearchResult, got: &SearchResult, tag: &str) {
        assert_eq!(want.neighbors.len(), got.neighbors.len(), "{tag}: k");
        for (w, g) in want.neighbors.iter().zip(got.neighbors.iter()) {
            assert_eq!(w.id, g.id, "{tag}: id");
            assert_eq!(w.dist.to_bits(), g.dist.to_bits(), "{tag}: dist");
        }
        assert_eq!(want.log.chunks_read, got.log.chunks_read, "{tag}: chunks");
        assert_eq!(want.log.bytes_read, got.log.bytes_read, "{tag}: bytes");
        assert_eq!(want.log.completed, got.log.completed, "{tag}: completed");
        assert_eq!(
            want.log.total_virtual.as_secs().to_bits(),
            got.log.total_virtual.as_secs().to_bits(),
            "{tag}: total_virtual"
        );
        assert_eq!(want.log.events.len(), got.log.events.len(), "{tag}: events");
        for (w, g) in want.log.events.iter().zip(got.log.events.iter()) {
            assert_eq!(w.chunk_id, g.chunk_id, "{tag}: event chunk");
            assert_eq!(
                w.completed_at.as_secs().to_bits(),
                g.completed_at.as_secs().to_bits(),
                "{tag}: event time"
            );
            assert_eq!(w.kth_dist.to_bits(), g.kth_dist.to_bits(), "{tag}: kth");
            assert_eq!(w.topk_ids, g.topk_ids, "{tag}: topk");
        }
    }

    #[test]
    fn per_query_results_bit_identical_to_serial_under_every_policy() {
        let (snap, set) = snapshot("bitident", 600, 30);
        let params = SearchParams::exact(8);
        let queries = trace(&set, 12, 3.0);
        let serial: Vec<SearchResult> = queries
            .iter()
            .map(|(q, _)| snap.search(q, &params).expect("serial"))
            .collect();
        for policy in Policy::ALL {
            for max_active in [1usize, 4, 12] {
                let mut config = SchedulerConfig::new(policy, max_active);
                config.max_queued = queries.len();
                let report = Scheduler::new(snap.clone(), config)
                    .serve_trace(&queries, &params)
                    .expect("serve");
                assert_eq!(report.stats.rejected, 0);
                assert_eq!(report.completions.len(), queries.len());
                for (c, want) in report.completions.iter().zip(serial.iter()) {
                    assert_result_bits(
                        want,
                        &c.result,
                        &format!("{}/act{max_active}/q{}", policy.name(), c.id),
                    );
                }
            }
        }
    }

    #[test]
    fn most_wanted_chunk_fetches_strictly_fewer_than_fair_share() {
        let (snap, set) = snapshot("mwc", 800, 30);
        let params = SearchParams::exact(10);
        // A burst of near-identical interests: everyone wants the same
        // leading chunks at the same time.
        let queries = trace(&set, 16, 0.5);
        let run = |policy: Policy| {
            let mut config = SchedulerConfig::new(policy, 8);
            config.max_queued = queries.len();
            Scheduler::new(snap.clone(), config)
                .serve_trace(&queries, &params)
                .expect("serve")
        };
        let fair = run(Policy::FairShare);
        let mwc = run(Policy::MostWantedChunk);
        assert_eq!(
            fair.stats.feeds, mwc.stats.feeds,
            "per-query work is policy-independent"
        );
        assert!(
            mwc.stats.fetches < fair.stats.fetches,
            "co-scheduling must fetch strictly fewer chunks: mwc {} vs fair {}",
            mwc.stats.fetches,
            fair.stats.fetches
        );
        assert!(mwc.stats.feeds > mwc.stats.fetches, "some tick fanned out");
    }

    #[test]
    fn overloaded_rejects_when_queue_is_full_and_run_continues() {
        let (snap, set) = snapshot("overload", 300, 25);
        let params = SearchParams::exact(5);
        let mut config = SchedulerConfig::new(Policy::FairShare, 1);
        config.max_queued = 1;
        let mut sched = Scheduler::new(snap.clone(), config);
        let q = set.vector_owned(0);
        // All arrive before the first chunk of work can complete.
        let t0 = VirtualDuration::ZERO;
        sched.submit(&q, &params, t0).expect("first admitted");
        sched.submit(&q, &params, t0).expect("second queued");
        let third = sched.submit(&q, &params, t0);
        assert!(
            matches!(
                third,
                Err(ServeError::Overloaded {
                    queued: 1,
                    capacity: 1
                })
            ),
            "third must be rejected, got {third:?}"
        );
        let report = sched.finish().expect("finish");
        assert_eq!(report.stats.submitted, 3);
        assert_eq!(report.stats.rejected, 1);
        assert_eq!(report.stats.completed, 2);
        assert_eq!(report.completions.len(), 2);
    }

    #[test]
    fn late_arrival_is_not_admitted_early_and_idle_clock_jumps() {
        let (snap, set) = snapshot("late", 300, 25);
        let params = SearchParams::exact(5);
        let config = SchedulerConfig::new(Policy::EarliestDeadline, 4);
        let mut sched = Scheduler::new(snap.clone(), config);
        let far = VirtualDuration::from_secs(100.0);
        sched
            .submit(&set.vector_owned(3), &params, far)
            .expect("submit");
        let report = sched.finish().expect("finish");
        let Some(c) = report.completions.first() else {
            panic!("one completion expected");
        };
        assert!(
            c.finish.as_secs() > 100.0,
            "work cannot finish before it arrives"
        );
        assert!(
            c.latency().as_secs() < 1.0,
            "an idle fleet serves a lone query promptly, got {}",
            c.latency()
        );
    }

    #[test]
    fn non_monotone_arrivals_are_refused() {
        let (snap, set) = snapshot("monotone", 200, 25);
        let params = SearchParams::exact(3);
        let mut sched = Scheduler::new(snap, SchedulerConfig::new(Policy::FairShare, 2));
        sched
            .submit(
                &set.vector_owned(0),
                &params,
                VirtualDuration::from_secs(1.0),
            )
            .expect("submit");
        let out = sched.submit(
            &set.vector_owned(1),
            &params,
            VirtualDuration::from_secs(0.5),
        );
        assert!(matches!(out, Err(ServeError::NonMonotoneArrival { .. })));
    }

    #[test]
    fn k_zero_completes_without_touching_the_disk() {
        let (snap, set) = snapshot("kzero", 200, 25);
        let params = SearchParams {
            k: 0,
            ..SearchParams::exact(0)
        };
        let report = Scheduler::new(snap, SchedulerConfig::new(Policy::MostWantedChunk, 2))
            .serve_trace(&trace(&set, 3, 1.0), &params)
            .expect("serve");
        assert_eq!(report.stats.completed, 3);
        assert_eq!(report.stats.fetches, 0);
        assert_eq!(report.stats.disk_reads, 0);
        for c in &report.completions {
            assert!(c.result.log.completed);
            assert_eq!(c.result.log.chunks_read, 0);
        }
    }

    #[test]
    fn tight_deadlines_are_counted_as_misses() {
        let (snap, set) = snapshot("deadline", 400, 25);
        let params = SearchParams::exact(8);
        let mut config = SchedulerConfig::new(Policy::EarliestDeadline, 4);
        config.deadline = VirtualDuration::from_ns(1.0);
        config.max_queued = 16;
        let report = Scheduler::new(snap, config)
            .serve_trace(&trace(&set, 6, 1.0), &params)
            .expect("serve");
        assert_eq!(report.stats.completed, 6);
        assert_eq!(
            report.stats.deadline_misses, 6,
            "a nanosecond deadline is always missed"
        );
    }

    #[test]
    fn edf_breaks_deadline_ties_by_remaining_work() {
        let (snap, set) = snapshot("edftie", 500, 25);
        let long = SearchParams {
            stop: StopRule::Chunks(8),
            ..SearchParams::exact(4)
        };
        let short = SearchParams {
            stop: StopRule::Chunks(1),
            ..SearchParams::exact(4)
        };
        let mut config = SchedulerConfig::new(Policy::EarliestDeadline, 4);
        config.max_queued = 4;
        let mut sched = Scheduler::new(snap, config);
        let t0 = VirtualDuration::ZERO;
        // Same arrival, same deadline: the long query is admitted first,
        // so a FIFO tie-break would serve all 8 of its chunks before the
        // one-chunk query gets a turn.
        let a = sched.submit(&set.vector_owned(0), &long, t0).expect("long");
        let b = sched
            .submit(&set.vector_owned(7), &short, t0)
            .expect("short");
        let report = sched.finish().expect("finish");
        assert_eq!(report.stats.completed, 2);
        let finish_of = |id: u64| {
            report
                .completions
                .iter()
                .find(|c| c.id == id)
                .map(|c| c.finish.as_secs())
                .expect("completed")
        };
        assert!(
            finish_of(b) < finish_of(a),
            "the one-chunk query must finish first under an equal deadline: \
             short {} vs long {}",
            finish_of(b),
            finish_of(a)
        );
    }

    #[test]
    fn cross_query_cache_hits_are_visible_in_the_report() {
        let (snap, set) = snapshot("cache", 500, 25);
        let params = SearchParams::exact(8);
        // The same query repeated: later sessions ride the cache the first
        // one warmed (arrivals spaced so runs do not fully overlap).
        let q = set.vector_owned(11);
        let queries: Vec<(Vector, VirtualDuration)> = (0..4)
            .map(|i| (q, VirtualDuration::from_secs(i as f64)))
            .collect();
        let mut config = SchedulerConfig::new(Policy::FairShare, 2);
        config.cache_budget_bytes = u64::MAX;
        let report = Scheduler::new(snap, config)
            .serve_trace(&queries, &params)
            .expect("serve");
        assert_eq!(report.stats.completed, 4);
        assert!(
            report.stats.cache.cross_query_hits > 0,
            "repeat queries must hit chunks their predecessors pinned: {:?}",
            report.stats.cache
        );
        assert!(report.stats.disk_reads < report.stats.fetches);
        assert_eq!(
            report.stats.disk_reads_by_shard,
            vec![report.stats.disk_reads],
            "the solo scheduler is a one-shard fleet"
        );
    }

    #[test]
    fn single_slot_policies_degenerate_to_the_same_schedule() {
        let (snap, set) = snapshot("degenerate", 400, 30);
        let params = SearchParams::exact(6);
        let queries = trace(&set, 5, 2.0);
        let mut reports = Vec::new();
        for policy in Policy::ALL {
            let mut config = SchedulerConfig::new(policy, 1);
            config.max_queued = queries.len();
            reports.push(
                Scheduler::new(snap.clone(), config)
                    .serve_trace(&queries, &params)
                    .expect("serve"),
            );
        }
        let Some(first) = reports.first() else {
            return;
        };
        for r in &reports {
            assert_eq!(r.stats.fetches, first.stats.fetches);
            assert_eq!(r.stats.feeds, first.stats.feeds);
            assert_eq!(
                r.makespan.as_secs().to_bits(),
                first.makespan.as_secs().to_bits(),
                "one active slot leaves no scheduling freedom"
            );
        }
    }

    fn chaos_run(
        snap: &Snapshot,
        queries: &[(Vector, VirtualDuration)],
        params: &SearchParams,
        plan: Option<FaultPlan>,
        retry: RetryPolicy,
    ) -> ServeReport {
        let mut config = SchedulerConfig::new(Policy::MostWantedChunk, 4);
        config.max_queued = queries.len();
        config.fault_plan = plan;
        config.retry = retry;
        Scheduler::new(snap.clone(), config)
            .serve_trace(queries, params)
            .expect("serve")
    }

    #[test]
    fn rate_zero_chaos_is_bit_identical_to_the_fault_free_scheduler() {
        let (snap, set) = snapshot("chaosq", 500, 30);
        let params = SearchParams::exact(6);
        let queries = trace(&set, 8, 2.0);
        let retry = RetryPolicy::new(
            3,
            VirtualDuration::from_ms(5.0),
            VirtualDuration::from_ms(1.0),
        );
        let plain = chaos_run(&snap, &queries, &params, None, retry);
        let quiet = chaos_run(
            &snap,
            &queries,
            &params,
            Some(FaultPlan::new(FaultConfig::quiet(77))),
            retry,
        );
        assert_eq!(plain.stats.fetches, quiet.stats.fetches);
        assert_eq!(quiet.stats.fetch_retries, 0);
        assert_eq!(quiet.stats.chunks_abandoned, 0);
        assert_eq!(quiet.stats.sessions_degraded, 0);
        assert_eq!(
            plain.makespan.as_secs().to_bits(),
            quiet.makespan.as_secs().to_bits(),
            "a quiet plan must not perturb the fleet clock"
        );
        for (a, b) in plain.completions.iter().zip(quiet.completions.iter()) {
            assert_result_bits(&a.result, &b.result, &format!("quiet q{}", a.id));
        }
    }

    #[test]
    fn recovered_transients_keep_results_bit_identical_and_cost_fleet_time() {
        let (snap, set) = snapshot("chaosflaky", 400, 30);
        let params = SearchParams::exact(6);
        let queries = trace(&set, 6, 2.0);
        let budget = eff2_chaos::plan::TRANSIENT_CLEAR + 1;
        let retry = RetryPolicy::new(
            budget,
            VirtualDuration::from_ms(5.0),
            VirtualDuration::from_ms(1.0),
        );
        let plain = chaos_run(&snap, &queries, &params, None, retry);
        let flaky = chaos_run(
            &snap,
            &queries,
            &params,
            Some(FaultPlan::new(FaultConfig::flaky(31, 1.0))),
            retry,
        );
        assert!(flaky.stats.fetch_retries > 0, "transients must retry");
        assert_eq!(flaky.stats.chunks_abandoned, 0);
        assert_eq!(flaky.stats.sessions_degraded, 0);
        assert_eq!(plain.completions.len(), flaky.completions.len());
        for (a, b) in plain.completions.iter().zip(flaky.completions.iter()) {
            assert_result_bits(&a.result, &b.result, &format!("flaky q{}", a.id));
        }
        assert!(
            flaky.makespan.as_secs() > plain.makespan.as_secs(),
            "retries are charged to the fleet clock: {} vs {}",
            flaky.makespan,
            plain.makespan
        );
    }

    #[test]
    fn lost_chunks_degrade_sessions_but_every_query_completes() {
        let (snap, set) = snapshot("chaosloss", 600, 25);
        // Scan-everything stop rule: every session must visit (or skip)
        // every chunk, so every session observes the full loss schedule.
        let params = SearchParams {
            stop: StopRule::Chunks(usize::MAX),
            ..SearchParams::exact(8)
        };
        let queries = trace(&set, 10, 1.0);
        let plan = FaultPlan::new(FaultConfig::lossy(13, 0.2));
        let lost = plan.permanent_losses(snap.n_chunks());
        assert!(!lost.is_empty(), "seed 13 must lose at least one chunk");
        let retry = RetryPolicy::new(
            2,
            VirtualDuration::from_ms(5.0),
            VirtualDuration::from_ms(1.0),
        );
        let report = chaos_run(&snap, &queries, &params, Some(plan), retry);
        assert_eq!(report.stats.completed, queries.len() as u64);
        assert!(report.stats.chunks_abandoned > 0);
        assert_eq!(report.stats.sessions_degraded, queries.len() as u64);
        for c in &report.completions {
            let d = &c.result.log.degradation;
            // Skips happen in each query's ranked order; compare as sets.
            let mut skipped = d.lost_chunks.clone();
            skipped.sort_unstable();
            assert_eq!(
                skipped, lost,
                "q{}: every session skips exactly the injected losses",
                c.id
            );
            assert!(d.descriptors_lost > 0);
        }
    }
}
