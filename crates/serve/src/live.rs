//! Serving under live mutation: queries, inserts and deletes on one
//! merged arrival timeline, with online compaction interleaved tick-for-
//! tick with the search work.
//!
//! A [`LiveServer`] owns a [`MutableIndex`] and drives everything on one
//! fleet [`PipelineClock`]:
//!
//! * a **query** arrival pins the index's current epoch
//!   ([`MutableIndex::pin`]) into an immutable
//!   [`EpochSnapshot`] — that session sees exactly that epoch for its
//!   whole life, no matter what later events do;
//! * a **mutation** arrival appends to the delta chunk (and is charged
//!   its manifest append on the fleet clock);
//! * when the [`CompactionPolicy`] fires, the compactor's fold is planned
//!   immediately ([`MutableIndex::begin_compaction`] — the fold is a pure
//!   function of the pinned state, so planning eagerly is deterministic)
//!   but its modelled cost is paid as a series of **compaction ticks**
//!   interleaved 1:1 with session-feeding ticks; the new generation
//!   installs only once its last tick is paid. Sessions admitted in the
//!   interim still pin the old generation — there are no torn epochs by
//!   construction.
//!
//! The headline property (proptested in `tests/live_mutation.rs`): every
//! completion's [`SearchResult`] is bit-identical to a solo run of the
//! same query against the completion's own pinned snapshot.

use crate::error::Result;
use eff2_core::search::{SearchParams, SearchResult};
use eff2_core::session::{ChunkRanking, SearchSession};
use eff2_core::EpochSnapshot;
use eff2_descriptor::Vector;
use eff2_epoch::{CompactionPlan, CompactionStats, MutableIndex};
use eff2_storage::chunkfile::ChunkPayload;
use eff2_storage::diskmodel::{PipelineClock, VirtualDuration};
use eff2_storage::source::SourcedChunk;
use eff2_storage::store::ChunkReader;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// When the background compactor folds the delta chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompactionPolicy {
    /// Never compact: the delta grows without bound (the baseline exp8
    /// measures imbalance against).
    Never,
    /// Fold once every `n` applied mutations (clamped to ≥ 1).
    EveryOps(usize),
}

impl CompactionPolicy {
    /// Stable name for tables and CSV.
    pub fn name(&self) -> String {
        match self {
            CompactionPolicy::Never => "never".to_string(),
            CompactionPolicy::EveryOps(n) => format!("every-{n}-ops"),
        }
    }
}

/// One event on the live timeline, in arrival order.
#[derive(Clone, Debug)]
pub enum LiveEvent {
    /// A search arriving at this instant.
    Query(Vector),
    /// An insert (or update) arriving at this instant.
    Insert {
        /// Descriptor id (a base id to supersede, or a fresh one).
        id: u32,
        /// The new descriptor.
        vector: Vector,
    },
    /// A delete arriving at this instant.
    Delete {
        /// Descriptor id to tombstone.
        id: u32,
    },
}

/// One finished query with everything needed to replay it solo.
#[derive(Clone, Debug)]
pub struct LiveCompletion {
    /// Submission order among queries (0-based).
    pub id: u64,
    /// The query vector.
    pub query: Vector,
    /// Virtual arrival time.
    pub arrival: VirtualDuration,
    /// Fleet-clock time of the last chunk scan.
    pub finish: VirtualDuration,
    /// The epoch snapshot this session pinned at admission — a solo
    /// [`EpochSnapshot::search`] against it must reproduce `result`
    /// bit-for-bit.
    pub snapshot: EpochSnapshot,
    /// The per-query answer and log.
    pub result: SearchResult,
}

impl LiveCompletion {
    /// Arrival-to-finish latency on the fleet clock.
    pub fn latency(&self) -> VirtualDuration {
        self.finish - self.arrival
    }
}

/// Fleet-level counters for a live run.
#[derive(Clone, Debug, Default)]
pub struct LiveStats {
    /// Queries served to completion.
    pub queries: u64,
    /// Mutations applied (inserts + deletes).
    pub mutations: u64,
    /// Compactions installed.
    pub compactions: u64,
    /// Ticks spent paying compaction cost (interleaved with serving).
    pub compaction_ticks: u64,
    /// Chunks fed to sessions.
    pub chunks_fed: u64,
    /// Total modelled compaction I/O + CPU charged to the fleet clock, in
    /// virtual seconds.
    pub compaction_cost_secs: f64,
    /// Largest chunk (descriptors) ever installed by a compaction; 0 when
    /// none ran.
    pub max_installed_chunk: usize,
    /// Stats of every installed compaction, in order.
    pub compaction_log: Vec<CompactionStats>,
}

/// Everything a finished live run produced.
#[derive(Clone, Debug)]
pub struct LiveReport {
    /// Per-query completions, sorted by submission id.
    pub completions: Vec<LiveCompletion>,
    /// Fleet counters.
    pub stats: LiveStats,
    /// Per-chunk descriptor counts of the final generation (the exp8
    /// imbalance-factor input).
    pub final_chunk_loads: Vec<usize>,
    /// Fleet-clock time at which the last event's work finished.
    pub makespan: VirtualDuration,
}

/// A query in flight, pinned to its admission-time epoch.
struct LiveActive {
    session: SearchSession,
    snapshot: EpochSnapshot,
    query: Vector,
    arrival: VirtualDuration,
}

/// A compaction whose fold is written but whose modelled cost is still
/// being paid tick by tick.
struct InFlightCompaction {
    plan: CompactionPlan,
    ticks_left: u64,
    io_per_tick: VirtualDuration,
    cpu_per_tick: VirtualDuration,
}

/// The live-mutation server. See the [module docs](self).
pub struct LiveServer {
    index: MutableIndex,
    params: SearchParams,
    policy: CompactionPolicy,
    clock: PipelineClock,
    next_query_id: u64,
    ops_since_compaction: usize,
    active: BTreeMap<u64, LiveActive>,
    fair_cursor: u64,
    /// One reader per generation still serving a session (old generation
    /// files outlive their swap exactly as long as a pin needs them).
    readers: BTreeMap<u64, ChunkReader>,
    compaction: Option<InFlightCompaction>,
    payload_buf: ChunkPayload,
    completions: Vec<LiveCompletion>,
    stats: LiveStats,
}

impl LiveServer {
    /// A server over `index`, answering every query with `params` and
    /// compacting per `policy`.
    pub fn new(index: MutableIndex, params: SearchParams, policy: CompactionPolicy) -> LiveServer {
        LiveServer {
            index,
            params,
            policy,
            clock: PipelineClock::start_at(VirtualDuration::ZERO),
            next_query_id: 0,
            ops_since_compaction: 0,
            active: BTreeMap::new(),
            fair_cursor: u64::MAX,
            readers: BTreeMap::new(),
            compaction: None,
            payload_buf: ChunkPayload::default(),
            completions: Vec::new(),
            stats: LiveStats::default(),
        }
    }

    /// The fleet clock.
    pub fn now(&self) -> VirtualDuration {
        self.clock.now()
    }

    /// The index being served (e.g. to inspect generation or epoch).
    pub fn index(&self) -> &MutableIndex {
        &self.index
    }

    /// Feeds one event arriving at `at`; events must arrive in
    /// non-decreasing time order. Backlog is processed up to the arrival
    /// instant first, so the event sees the fleet as it stands *at* `at`.
    pub fn offer(&mut self, at: VirtualDuration, event: &LiveEvent) -> Result<()> {
        self.advance_to(at)?;
        match event {
            LiveEvent::Query(query) => self.admit(*query, at),
            LiveEvent::Insert { id, vector } => {
                self.index.insert(*id, *vector)?;
                self.book_mutation()
            }
            LiveEvent::Delete { id } => {
                self.index.delete(*id)?;
                self.book_mutation()
            }
        }
    }

    /// Feeds a whole `(arrival, event)` trace (already time-ordered) and
    /// drains; convenience over [`offer`](Self::offer) + [`finish`](Self::finish).
    pub fn serve_trace(
        mut self,
        trace: &[(VirtualDuration, LiveEvent)],
    ) -> Result<(LiveReport, MutableIndex)> {
        for (at, event) in trace {
            self.offer(*at, event)?;
        }
        self.finish()
    }

    /// Drains every in-flight session and in-flight compaction, then
    /// returns the report and the index (with every delta op and
    /// installed generation intact) for further serving.
    pub fn finish(mut self) -> Result<(LiveReport, MutableIndex)> {
        while !self.active.is_empty() || self.compaction.is_some() {
            self.tick()?;
        }
        let makespan = self
            .completions
            .iter()
            .map(|c| c.finish)
            .fold(self.clock.now(), VirtualDuration::max);
        let mut completions = std::mem::take(&mut self.completions);
        completions.sort_by_key(|c| c.id);
        let final_chunk_loads = self
            .index
            .base()
            .metas()
            .iter()
            .map(|m| m.count as usize)
            .collect();
        let report = LiveReport {
            completions,
            stats: self.stats,
            final_chunk_loads,
            makespan,
        };
        Ok((report, self.index))
    }

    /// Admits one query: pin the current epoch, rank its chunks (charged
    /// on the fleet clock), seed the session with the pinned delta.
    fn admit(&mut self, query: Vector, arrival: VirtualDuration) -> Result<()> {
        let snapshot = self.index.pin();
        let mut ranking = ChunkRanking::default();
        snapshot.base().rank_into(&mut ranking, &query);
        let rank_cpu = snapshot
            .base()
            .model()
            .rank_time(snapshot.base().n_chunks());
        let ranked_at = self.clock.chunk_overlapped(VirtualDuration::ZERO, rank_cpu);
        let session = snapshot.session_from_ranking(ranking, &query, &self.params);
        let id = self.next_query_id;
        self.next_query_id += 1;
        let active = LiveActive {
            session,
            snapshot,
            query,
            arrival,
        };
        if active.session.stop_satisfied() || active.session.next_wanted().is_none() {
            self.retire(id, active, ranked_at);
        } else {
            self.readers
                .entry(active.snapshot.generation())
                .or_insert(active.snapshot.base().store().reader()?);
            self.active.insert(id, active);
        }
        Ok(())
    }

    /// Books one applied mutation: its manifest append is charged as
    /// fleet I/O, and the compaction policy is consulted.
    fn book_mutation(&mut self) -> Result<()> {
        self.stats.mutations += 1;
        self.ops_since_compaction += 1;
        let append = self
            .index
            .model()
            .io_time(eff2_storage::chunkfile::RECORD_BYTES as u64);
        let _ = self.clock.chunk_overlapped(append, VirtualDuration::ZERO);
        if let CompactionPolicy::EveryOps(n) = self.policy {
            if self.compaction.is_none() && self.ops_since_compaction >= n.max(1) {
                self.begin_compaction()?;
            }
        }
        Ok(())
    }

    /// Plans the fold now (deterministically, from the pinned state) and
    /// schedules its cost over one tick per folded chunk.
    fn begin_compaction(&mut self) -> Result<()> {
        let plan = self.index.begin_compaction()?;
        self.ops_since_compaction = 0;
        let model = *self.index.model();
        let stats = plan.stats();
        let ticks = (stats.chunks_before as u64).max(1);
        let io = stats.io_cost(&model);
        let cpu = stats.cpu_cost(&model);
        self.stats.compaction_cost_secs += io.as_secs() + cpu.as_secs();
        self.compaction = Some(InFlightCompaction {
            plan,
            ticks_left: ticks,
            io_per_tick: VirtualDuration::from_secs(io.as_secs() / ticks as f64),
            cpu_per_tick: VirtualDuration::from_secs(cpu.as_secs() / ticks as f64),
        });
        Ok(())
    }

    /// Processes backlog until the fleet clock reaches `t`; an idle fleet
    /// jumps straight there.
    fn advance_to(&mut self, t: VirtualDuration) -> Result<()> {
        while (!self.active.is_empty() || self.compaction.is_some())
            && self.clock.now().as_secs() < t.as_secs()
        {
            self.tick()?;
        }
        if self.clock.now().as_secs() < t.as_secs() {
            self.clock = PipelineClock::start_at(t);
        }
        Ok(())
    }

    /// One fleet tick: feed one session its next chunk (round-robin),
    /// then pay one compaction tick — the 1:1 interleave that keeps the
    /// fold from starving the serve path (and vice versa).
    fn tick(&mut self) -> Result<()> {
        self.feed_one()?;
        self.compaction_tick()?;
        Ok(())
    }

    /// Round-robin: feed the next active session one chunk from its
    /// pinned generation.
    fn feed_one(&mut self) -> Result<()> {
        let Some(id) = self
            .active
            .range(self.fair_cursor.saturating_add(1)..)
            .map(|(id, _)| *id)
            .next()
            .or_else(|| self.active.keys().next().copied())
        else {
            return Ok(());
        };
        self.fair_cursor = id;
        let (chunk_id, generation) = {
            let Some(a) = self.active.get(&id) else {
                return Ok(());
            };
            let Some(chunk_id) = a.session.next_wanted() else {
                return Ok(());
            };
            (chunk_id, a.snapshot.generation())
        };
        let Some(reader) = self.readers.get_mut(&generation) else {
            return Ok(());
        };
        let bytes_read = reader.read_chunk(chunk_id, &mut self.payload_buf)?;
        let payload = Arc::new(std::mem::take(&mut self.payload_buf));
        let chunk = SourcedChunk {
            id: chunk_id,
            payload,
            bytes_read,
        };
        let io = self.index.model().io_time(bytes_read);
        let cpu = self.index.model().scan_time(chunk.payload.len());
        let done = self.clock.chunk_overlapped(io, cpu);
        self.stats.chunks_fed += 1;
        let Some(a) = self.active.get_mut(&id) else {
            return Ok(());
        };
        a.session.step_with(&chunk)?;
        if a.session.stop_satisfied() || a.session.next_wanted().is_none() {
            if let Some(a) = self.active.remove(&id) {
                self.retire(id, a, done);
            }
        }
        Ok(())
    }

    /// Pays one slice of the in-flight compaction; installs the new
    /// generation when the last slice is paid.
    fn compaction_tick(&mut self) -> Result<()> {
        let Some(c) = self.compaction.as_mut() else {
            return Ok(());
        };
        let _ = self.clock.chunk_overlapped(c.io_per_tick, c.cpu_per_tick);
        self.stats.compaction_ticks += 1;
        c.ticks_left -= 1;
        if c.ticks_left == 0 {
            let Some(c) = self.compaction.take() else {
                return Ok(());
            };
            let stats = self.index.install_compaction(c.plan)?;
            self.stats.compactions += 1;
            self.stats.max_installed_chunk =
                self.stats.max_installed_chunk.max(stats.max_chunk_after);
            // Readers for generations no session pins any more are let go;
            // the files stay on disk for pins held outside the server.
            let live_gens: Vec<u64> = self
                .active
                .values()
                .map(|a| a.snapshot.generation())
                .collect();
            self.readers.retain(|g, _| live_gens.contains(g));
            self.stats.compaction_log.push(stats);
        }
        Ok(())
    }

    /// Books a finished session.
    fn retire(&mut self, id: u64, active: LiveActive, finish: VirtualDuration) {
        self.stats.queries += 1;
        self.completions.push(LiveCompletion {
            id,
            query: active.query,
            arrival: active.arrival,
            finish,
            snapshot: active.snapshot,
            result: active.session.into_result(),
        });
    }
}

impl std::fmt::Debug for LiveServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveServer")
            .field("policy", &self.policy)
            .field("active", &self.active.len())
            .field("generation", &self.index.generation())
            .field("epoch", &self.index.epoch())
            .field("now", &self.clock.now())
            .finish()
    }
}

/// Builds a time-ordered live trace by merging query arrivals with
/// mutation arrivals (each `(at, event)`); ties go to the earlier list
/// position, queries before mutations at the exact same instant.
pub fn merge_timelines(
    queries: &[(Vector, VirtualDuration)],
    mutations: &[(VirtualDuration, LiveEvent)],
) -> Vec<(VirtualDuration, LiveEvent)> {
    let mut q: VecDeque<(VirtualDuration, LiveEvent)> = queries
        .iter()
        .map(|(v, at)| (*at, LiveEvent::Query(*v)))
        .collect();
    let mut m: VecDeque<(VirtualDuration, LiveEvent)> = mutations.iter().cloned().collect();
    let mut out = Vec::with_capacity(q.len() + m.len());
    while !q.is_empty() || !m.is_empty() {
        let take_q = match (q.front(), m.front()) {
            (Some((qa, _)), Some((ma, _))) => qa.as_secs() <= ma.as_secs(),
            (Some(_), None) => true,
            _ => false,
        };
        if take_q {
            if let Some(e) = q.pop_front() {
                out.push(e);
            }
        } else if let Some(e) = m.pop_front() {
            out.push(e);
        }
    }
    out
}
