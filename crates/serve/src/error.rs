//! The serving layer's error taxonomy.

/// Errors surfaced by the [`Scheduler`](crate::Scheduler).
#[derive(Debug)]
pub enum ServeError {
    /// Admission control refused the query: the wait queue is full.
    Overloaded {
        /// Queries already waiting for an execution slot.
        queued: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// Queries must be submitted in non-decreasing arrival order — the
    /// scheduler replays a trace, it is not an online reordering buffer.
    NonMonotoneArrival {
        /// Arrival time of the previously submitted query, in virtual
        /// seconds.
        prev_secs: f64,
        /// The offending (earlier) arrival time, in virtual seconds.
        next_secs: f64,
    },
    /// The underlying chunk store failed.
    Storage(eff2_storage::Error),
}

/// Serving-layer result alias.
pub type Result<T> = std::result::Result<T, ServeError>;

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { queued, capacity } => write!(
                f,
                "overloaded: {queued} queries already queued (capacity {capacity})"
            ),
            ServeError::NonMonotoneArrival {
                prev_secs,
                next_secs,
            } => write!(
                f,
                "arrivals must be non-decreasing: {next_secs}s submitted after {prev_secs}s"
            ),
            ServeError::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<eff2_storage::Error> for ServeError {
    fn from(e: eff2_storage::Error) -> Self {
        ServeError::Storage(e)
    }
}
