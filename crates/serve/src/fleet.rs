// lint:allow-file(panic.index): shard-node vectors are sized by n_shards at construction and indexed by shard ids the ShardMap produced
//! Sharded fleet serving: scatter–gather search over partitioned chunks.
//!
//! The solo [`Scheduler`](crate::Scheduler) interleaves many queries over
//! *one* simulated device. A [`FleetScheduler`] partitions the same chunk
//! index across N shard nodes — each with its own disk/CPU
//! [`PipelineClock`] and its own byte-budgeted resident cache — places
//! chunks by a [`Placement`] policy (chunk-hash or centroid-locality, with
//! R-way replication), and serves each query *scatter–gather*:
//!
//! 1. the query's global [`ChunkRanking`] is split by routed owner into
//!    per-shard **legs** ([`ChunkRanking::split_by_owner`]) — detached
//!    [`SearchSession`]s that scan only their shard's chunks, in global
//!    rank order restricted to the shard;
//! 2. each tick serves the *earliest* shard clock that has runnable leg
//!    work, picking within the shard by the same [`Policy`] the solo
//!    scheduler uses; legs may run at most [`FleetConfig::lookahead`]
//!    global ranks past the gather cursor;
//! 3. leg outcomes are buffered by global rank and drained into the
//!    query's [`ScatterGather`], which merges neighbour snapshots, replays
//!    the private-clock charges and evaluates the stop rule — so the
//!    merged answer is **bit-identical** to the solo single-device run
//!    (the determinism argument lives in `eff2_core::merge`).
//!
//! Replication turns permanent loss into **failover**: a read goes to the
//! routed owner and falls back copy by copy (retry/backoff charged per
//! probe); only when every copy fails is the chunk incorporated as lost,
//! degrading the result exactly like the solo scheduler's abandoned
//! chunks. Whole-shard-down faults ([`ShardFaultPlan`]) are static for the
//! run: routing skips downed owners at admission, and a chunk with no live
//! owner is pre-booked lost with its modelled probe cost.
//!
//! A fleet of one shard with replication 1 and no faults reproduces the
//! solo scheduler bit-for-bit — same per-query results, same completions,
//! same makespan — because `PipelineClock::chunk_overlapped` decomposes
//! into the `io_done_after`/`cpu_after` pair the fleet charges cross-shard
//! deliveries with.

use crate::error::{Result, ServeError};
use crate::scheduler::{Completion, Policy, ServeReport, ServeStats};
use eff2_chaos::{Fault, FaultPlan, RetryPolicy, ShardFaultPlan};
use eff2_core::merge::{LegOutcome, ScatterGather};
use eff2_core::search::{SearchParams, StopRule};
use eff2_core::session::{ChunkRanking, SearchSession};
use eff2_core::snapshot::Snapshot;
use eff2_core::CoarseQuantizer;
use eff2_descriptor::Vector;
use eff2_shard::{Placement, ShardMap};
use eff2_storage::diskmodel::{PipelineClock, VirtualDuration};
use eff2_storage::source::{Fetched, ResidentSource, ResidentStats};
use eff2_storage::store::ChunkReader;
use eff2_storage::ErrorClass;
use std::collections::{BTreeMap, VecDeque};

/// Which copies a [`FaultPlan`]'s permanent-loss draw applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossScope {
    /// The permanent draw models loss of the primary copy's medium only:
    /// replicas share the chunk's per-attempt weather
    /// ([`FaultPlan::attempt_fault`]) but not its permanent fate, so
    /// replication ≥ 2 turns a permanent loss into a failover and the
    /// result stays exact.
    Primary,
    /// The permanent draw kills every copy — replication cannot help, and
    /// the fleet degrades exactly like the single-device scheduler.
    AllCopies,
}

/// Fleet scheduler knobs. The solo [`SchedulerConfig`](crate::SchedulerConfig)
/// fields keep their meaning; the additions configure the shard layer.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// The per-shard chunk-pick policy.
    pub policy: Policy,
    /// Shard nodes in the fleet. Clamped to a minimum of 1.
    pub n_shards: usize,
    /// Copies per chunk (clamped to `n_shards` by the [`ShardMap`]).
    pub replication: usize,
    /// How primary copies are assigned to shards.
    pub placement: Placement,
    /// Queries interleaved at once across the whole fleet.
    pub max_active: usize,
    /// Admitted-but-waiting queries beyond which submission is refused.
    pub max_queued: usize,
    /// Byte budget of **each** shard's decoded-chunk cache.
    pub cache_budget_bytes: u64,
    /// Per-query virtual deadline, measured from arrival.
    pub deadline: VirtualDuration,
    /// How far past the gather cursor a leg may scan ahead, in global
    /// ranks. Bounds the buffered out-of-order outcomes per query; the
    /// rank-`cursor` chunk is always runnable, so any value ≥ 0 makes
    /// progress.
    pub lookahead: usize,
    /// Injected chunk-fault schedule (applied per copy — see
    /// [`LossScope`]).
    pub fault_plan: Option<FaultPlan>,
    /// Which copies the plan's permanent-loss draw kills.
    pub loss_scope: LossScope,
    /// Whole-shard-down schedule, static for the run.
    pub shard_faults: ShardFaultPlan,
    /// Retry/backoff budget per copy; failed probes are charged to the
    /// modelled clock exactly like the solo scheduler's.
    pub retry: RetryPolicy,
}

impl FleetConfig {
    /// A fleet of `n_shards` nodes under `policy` at concurrency
    /// `max_active`, replication 1, hash placement, the solo scheduler's
    /// default queue/cache/deadline, and a lookahead of 8 ranks.
    pub fn new(policy: Policy, n_shards: usize, max_active: usize) -> FleetConfig {
        let active = max_active.max(1);
        FleetConfig {
            policy,
            n_shards: n_shards.max(1),
            replication: 1,
            placement: Placement::ChunkHash,
            max_active: active,
            max_queued: active.saturating_mul(4),
            cache_budget_bytes: 8 << 20,
            deadline: VirtualDuration::from_secs(2.0),
            lookahead: 8,
            fault_plan: None,
            loss_scope: LossScope::Primary,
            shard_faults: ShardFaultPlan::none(),
            retry: RetryPolicy::none(),
        }
    }
}

/// Everything a finished fleet run produced.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Completions, fleet counters ([`ServeStats::disk_reads_by_shard`]
    /// is per shard node) and makespan — the same shape the solo
    /// scheduler reports, so eval code handles both.
    pub report: ServeReport,
    /// Chunk deliveries that crossed shards: the delivering shard differed
    /// from the fed query's home shard (counted once per fed query).
    /// Centroid-locality placement exists to shrink this.
    pub cross_shard_fetches: u64,
    /// Deliveries served by a non-primary copy (a downed or faulted
    /// earlier copy was skipped or probed first).
    pub failovers: u64,
    /// Max-over-mean primary chunk count of the placement actually used —
    /// the Tavenard/Amsaleg/Jégou imbalance factor.
    pub imbalance_factor: f64,
    /// Primary chunk count per shard.
    pub per_shard_primary_chunks: Vec<usize>,
}

/// A query waiting for an execution slot.
struct FleetPending {
    id: u64,
    query: Vector,
    params: SearchParams,
    arrival: VirtualDuration,
}

/// A query in flight: its gather side plus per-shard scan legs.
struct FleetActive {
    gather: ScatterGather,
    /// Per-shard legs, keyed by shard id; only shards owning at least one
    /// of this query's routed chunks appear. Legs run under a
    /// scan-everything stop rule — the gather's rule decides when the
    /// *query* stops.
    legs: BTreeMap<u32, SearchSession>,
    /// Leg outcomes waiting for the gather cursor, keyed by global rank:
    /// `(chunk id, outcome, fleet completion time)`.
    buffered: BTreeMap<usize, (usize, LegOutcome, VirtualDuration)>,
    /// Chunk id → global rank in this query's ranking (`u32::MAX` for
    /// unranked ids).
    rank_of: Vec<u32>,
    /// Global ranks whose chunk has no live owner, pre-booked lost with
    /// the modelled probe cost (charged to the private clock only — no
    /// shard did work).
    unreachable: BTreeMap<usize, VirtualDuration>,
    arrival: VirtualDuration,
    deadline: VirtualDuration,
    /// The routed owner of the query's first-ranked chunk (0 if none):
    /// where ranking CPU is charged and what cross-shard fetches are
    /// counted against.
    home: u32,
    /// Cache-attribution requester ids, one per shard.
    requesters: Vec<u64>,
    /// Fleet finish: running max over incorporated outcome times (seeded
    /// with the admission ranking charge).
    finish: VirtualDuration,
}

/// One simulated shard node: its own device clock, cache and fault
/// counters.
struct ShardNode {
    clock: PipelineClock,
    source: ResidentSource,
    reader: Option<ChunkReader>,
    /// Per-chunk attempt counters for this node's copy — transients clear
    /// after the same number of probes as a serial run against the node.
    chaos_attempts: BTreeMap<usize, u32>,
}

/// What one fleet acquire (with failover) produced.
enum FleetAcquired {
    /// A copy delivered the chunk; `injected` is modelled extra latency
    /// (spikes plus failed-probe cost) and `from_shard` is the node whose
    /// disk/cache served it.
    Delivered {
        fetched: Fetched,
        injected: VirtualDuration,
        from_shard: usize,
    },
    /// Every live copy failed; `spent` modelled time was burned finding
    /// that out.
    Lost { spent: VirtualDuration },
}

/// The sharded scatter–gather scheduler. See the [module docs](self).
pub struct FleetScheduler {
    snapshot: Snapshot,
    config: FleetConfig,
    map: ShardMap,
    /// Static down flags per shard, fixed at construction.
    down: Vec<bool>,
    /// Chunk id → routed owner under `down` (`u32::MAX` = unreachable).
    routed: Vec<u32>,
    nodes: Vec<ShardNode>,
    last_arrival: VirtualDuration,
    next_id: u64,
    pending: VecDeque<FleetPending>,
    active: BTreeMap<u64, FleetActive>,
    /// Last query id served by [`Policy::FairShare`] (fleet-wide).
    fair_cursor: u64,
    spare_rankings: Vec<ChunkRanking>,
    completions: Vec<Completion>,
    stats: ServeStats,
    cross_shard_fetches: u64,
    failovers: u64,
}

impl FleetScheduler {
    /// A fleet over `snapshot` with `config`. Builds the [`ShardMap`]
    /// (training the coarse quantizer for centroid-locality placement) and
    /// the static routing table up front.
    pub fn new(snapshot: Snapshot, config: FleetConfig) -> FleetScheduler {
        let config = FleetConfig {
            n_shards: config.n_shards.max(1),
            max_active: config.max_active.max(1),
            ..config
        };
        let n_chunks = snapshot.n_chunks();
        let map = match config.placement {
            Placement::ChunkHash => {
                ShardMap::chunk_hash(n_chunks, config.n_shards, config.replication)
            }
            Placement::CentroidLocality => {
                let quantizer = CoarseQuantizer::for_store(snapshot.store());
                let cells: Vec<Vec<u32>> = quantizer
                    .cells()
                    .map(|(_, _, _, members)| members.to_vec())
                    .collect();
                ShardMap::from_cells(&cells, n_chunks, config.n_shards, config.replication)
            }
        };
        let down = config.shard_faults.down_mask(config.n_shards);
        let routed = map.routed_owners(&down);
        let nodes = (0..config.n_shards)
            .map(|_| ShardNode {
                clock: PipelineClock::start_at(VirtualDuration::ZERO),
                source: snapshot.resident_source(config.cache_budget_bytes),
                reader: None,
                chaos_attempts: BTreeMap::new(),
            })
            .collect();
        let stats = ServeStats {
            disk_reads_by_shard: vec![0; config.n_shards],
            ..ServeStats::default()
        };
        FleetScheduler {
            snapshot,
            config,
            map,
            down,
            routed,
            nodes,
            last_arrival: VirtualDuration::ZERO,
            next_id: 0,
            pending: VecDeque::new(),
            active: BTreeMap::new(),
            fair_cursor: u64::MAX,
            spare_rankings: Vec::new(),
            completions: Vec::new(),
            stats,
            cross_shard_fetches: 0,
            failovers: 0,
        }
    }

    /// The placement table this fleet routes by.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The static per-shard down flags.
    pub fn down_mask(&self) -> &[bool] {
        &self.down
    }

    /// Queries waiting for a slot.
    pub fn queued(&self) -> usize {
        self.pending.len()
    }

    /// Queries currently in flight.
    pub fn active(&self) -> usize {
        self.active.len()
    }

    /// Offers one query arriving at virtual time `arrival` — the same
    /// admission contract as [`Scheduler::submit`](crate::Scheduler::submit).
    pub fn submit(
        &mut self,
        query: &Vector,
        params: &SearchParams,
        arrival: VirtualDuration,
    ) -> Result<u64> {
        if arrival.as_secs() < self.last_arrival.as_secs() {
            return Err(ServeError::NonMonotoneArrival {
                prev_secs: self.last_arrival.as_secs(),
                next_secs: arrival.as_secs(),
            });
        }
        self.last_arrival = arrival;
        self.stats.submitted += 1;
        self.advance_to(arrival)?;
        if self.active.len() >= self.config.max_active
            && self.pending.len() >= self.config.max_queued
        {
            self.stats.rejected += 1;
            return Err(ServeError::Overloaded {
                queued: self.pending.len(),
                capacity: self.config.max_queued,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push_back(FleetPending {
            id,
            query: *query,
            params: *params,
            arrival,
        });
        self.catch_up()?;
        Ok(id)
    }

    /// Drains every admitted query and returns the report.
    pub fn finish(mut self) -> Result<FleetReport> {
        loop {
            self.catch_up()?;
            if self.active.is_empty() {
                if self.pending.is_empty() {
                    break;
                }
                continue; // instant completions drained a wave; re-admit
            }
            let shard = self.next_shard()?;
            self.tick(shard)?;
        }
        let makespan = self
            .completions
            .iter()
            .map(|c| c.finish)
            .fold(VirtualDuration::ZERO, VirtualDuration::max);
        let mut cache = ResidentStats::default();
        for node in &self.nodes {
            let s = node.source.stats();
            cache.hits += s.hits;
            cache.cross_query_hits += s.cross_query_hits;
            cache.misses += s.misses;
            cache.evictions += s.evictions;
            cache.resident_bytes += s.resident_bytes;
            cache.resident_chunks += s.resident_chunks;
        }
        self.stats.cache = cache;
        let mut completions = std::mem::take(&mut self.completions);
        completions.sort_by_key(|c| c.id);
        Ok(FleetReport {
            report: ServeReport {
                completions,
                stats: self.stats,
                makespan,
            },
            cross_shard_fetches: self.cross_shard_fetches,
            failovers: self.failovers,
            imbalance_factor: self.map.imbalance_factor(),
            per_shard_primary_chunks: self.map.primary_counts(),
        })
    }

    /// Submits a whole trace (already in arrival order) and drains;
    /// overload rejections are counted, not fatal.
    pub fn serve_trace(
        mut self,
        trace: &[(Vector, VirtualDuration)],
        params: &SearchParams,
    ) -> Result<FleetReport> {
        for (query, arrival) in trace {
            match self.submit(query, params, *arrival) {
                Ok(_) | Err(ServeError::Overloaded { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        self.finish()
    }

    /// The shard the next tick runs on: the earliest clock among shards
    /// with runnable leg work (ties on the lower shard id). Errors if no
    /// shard is runnable while queries are active — the rank-`cursor`
    /// chunk of every active query is always runnable, so that would be a
    /// scheduler bug, not a workload property.
    fn next_shard(&self) -> Result<usize> {
        let mut best: Option<(usize, f64)> = None;
        for shard in 0..self.config.n_shards {
            if !self.shard_runnable(shard) {
                continue;
            }
            let now = self.nodes[shard].clock.now().as_secs();
            let better = match best {
                None => true,
                Some((_, b)) => now.total_cmp(&b) == std::cmp::Ordering::Less,
            };
            if better {
                best = Some((shard, now));
            }
        }
        best.map(|(shard, _)| shard).ok_or_else(|| {
            ServeError::Storage(eff2_storage::Error::Inconsistent(
                "fleet stalled: active queries but no runnable shard".to_string(),
            ))
        })
    }

    /// Whether `shard` has at least one runnable `(query, chunk)` pair.
    fn shard_runnable(&self, shard: usize) -> bool {
        self.active
            .values()
            .any(|a| self.leg_wanted(a, shard).is_some())
    }

    /// The chunk `a`'s leg on `shard` may scan next, if it is within the
    /// lookahead window of the gather cursor.
    fn leg_wanted(&self, a: &FleetActive, shard: usize) -> Option<usize> {
        let leg = a.legs.get(&(shard as u32))?;
        let chunk = leg.next_wanted()?;
        let rank = a.rank_of.get(chunk).copied().unwrap_or(u32::MAX) as usize;
        (rank <= a.gather.cursor().saturating_add(self.config.lookahead)).then_some(chunk)
    }

    /// The next-tick shard's clock — the fleet's admission frontier (falls
    /// back to the latest clock when nothing is runnable, e.g. the fleet is
    /// idle).
    fn frontier(&self) -> VirtualDuration {
        match self.next_shard() {
            Ok(shard) => self.nodes[shard].clock.now(),
            Err(_) => self
                .nodes
                .iter()
                .map(|n| n.clock.now())
                .fold(VirtualDuration::ZERO, VirtualDuration::max),
        }
    }

    /// Processes backlog until the fleet frontier reaches `t`.
    fn advance_to(&mut self, t: VirtualDuration) -> Result<()> {
        loop {
            self.catch_up()?;
            if self.active.is_empty() {
                if self.pending.is_empty() {
                    break;
                }
                continue;
            }
            let shard = self.next_shard()?;
            if self.nodes[shard].clock.now().as_secs() >= t.as_secs() {
                break;
            }
            self.tick(shard)?;
        }
        Ok(())
    }

    /// Admits eligible pending queries; when idle, jumps lagging shard
    /// clocks forward to the next arrival first (the solo scheduler's
    /// idle jump, per shard).
    fn catch_up(&mut self) -> Result<()> {
        self.admit_eligible()?;
        if self.active.is_empty() {
            if let Some(front) = self.pending.front() {
                let arrival = front.arrival;
                for node in &mut self.nodes {
                    if arrival.as_secs() > node.clock.now().as_secs() {
                        node.clock = PipelineClock::start_at(arrival);
                    }
                }
            }
            self.admit_eligible()?;
        }
        Ok(())
    }

    /// Modelled cost of discovering that every owner of `chunk` is down:
    /// one probe per (downed) copy under the retry policy.
    fn down_probe_cost(&self, chunk: usize) -> VirtualDuration {
        let mut spent = VirtualDuration::ZERO;
        for probe in 0..self.map.owners(chunk).len() as u32 {
            spent += self.config.retry.attempt_cost(probe);
        }
        spent
    }

    /// Moves pending queries whose arrival the frontier has passed into
    /// active slots: rank on the home shard, split the ranking into legs,
    /// pre-book unreachable ranks, drain any instantly-satisfiable state.
    fn admit_eligible(&mut self) -> Result<()> {
        while self.active.len() < self.config.max_active {
            let eligible = self
                .pending
                .front()
                .is_some_and(|p| p.arrival.as_secs() <= self.frontier().as_secs());
            if !eligible {
                break;
            }
            let Some(p) = self.pending.pop_front() else {
                break;
            };
            // Shards idle behind this arrival jump to it: the query's leg
            // work cannot be charged before the query exists, and a
            // lagging clock had (by the lookahead discipline) nothing it
            // was allowed to run.
            for node in &mut self.nodes {
                if p.arrival.as_secs() > node.clock.now().as_secs() {
                    node.clock = PipelineClock::start_at(p.arrival);
                }
            }
            let mut ranking = self.spare_rankings.pop().unwrap_or_default();
            self.snapshot.rank_into(&mut ranking, &p.query);
            let rank_cpu = self.snapshot.model().rank_time(self.snapshot.n_chunks());
            let home = if !ranking.is_empty() {
                match self.routed.get(ranking.chunk_at(0)).copied() {
                    Some(s) if s != u32::MAX => s,
                    _ => 0,
                }
            } else {
                0
            };
            let ranked_at = self.nodes[home as usize]
                .clock
                .chunk_overlapped(VirtualDuration::ZERO, rank_cpu);
            let gather = ScatterGather::new(ranking, self.snapshot.model(), &p.params);
            let leg_params = SearchParams {
                stop: StopRule::Chunks(usize::MAX),
                ..p.params
            };
            let mut legs = BTreeMap::new();
            for (shard, leg_ranking) in gather
                .ranking()
                .split_by_owner(&self.routed, self.config.n_shards)
                .into_iter()
                .enumerate()
            {
                if leg_ranking.is_empty() {
                    continue;
                }
                legs.insert(
                    shard as u32,
                    self.snapshot
                        .session_from_ranking(leg_ranking, &p.query, &leg_params),
                );
            }
            let mut rank_of = vec![u32::MAX; self.snapshot.n_chunks()];
            let mut unreachable = BTreeMap::new();
            for rank in 0..gather.ranking().len() {
                let chunk = gather.ranking().chunk_at(rank);
                if let Some(slot) = rank_of.get_mut(chunk) {
                    *slot = rank as u32;
                }
                if self.routed.get(chunk).copied() == Some(u32::MAX) {
                    unreachable.insert(rank, self.down_probe_cost(chunk));
                }
            }
            let requesters = (0..self.config.n_shards)
                .map(|s| {
                    if legs.contains_key(&(s as u32)) {
                        self.nodes[s].source.new_requester()
                    } else {
                        0
                    }
                })
                .collect();
            let active = FleetActive {
                gather,
                legs,
                buffered: BTreeMap::new(),
                rank_of,
                unreachable,
                arrival: p.arrival,
                deadline: p.arrival + self.config.deadline,
                home,
                requesters,
                finish: ranked_at,
            };
            if active.gather.stop_satisfied() {
                // k = 0, an empty index, or a zero-chunk stop rule: done
                // without reading anything.
                self.retire(p.id, active);
            } else {
                self.active.insert(p.id, active);
                // The front ranks may be unreachable — drain them now so
                // the cursor lands on a servable chunk (or retires).
                self.drain(p.id)?;
            }
        }
        Ok(())
    }

    /// One scheduling step on `shard`: pick a chunk by policy, acquire it
    /// with failover, feed every selected leg, drain gathers.
    fn tick(&mut self, shard: usize) -> Result<()> {
        let Some((chunk_id, fed_ids)) = self.pick(shard) else {
            return Ok(());
        };
        if self.config.policy == Policy::FairShare {
            if let Some(id) = fed_ids.first() {
                self.fair_cursor = *id;
            }
        }
        let requesters = fed_ids
            .first()
            .and_then(|id| self.active.get(id))
            .map_or_else(Vec::new, |a| a.requesters.clone());
        match self.acquire(&requesters, chunk_id)? {
            FleetAcquired::Delivered {
                fetched,
                injected,
                from_shard,
            } => {
                self.stats.ticks += 1;
                self.stats.fetches += 1;
                if fetched.from_disk {
                    self.stats.disk_reads += 1;
                    if let Some(slot) = self.stats.disk_reads_by_shard.get_mut(from_shard) {
                        *slot += 1;
                    }
                }
                for id in &fed_ids {
                    if let Some(a) = self.active.get(id) {
                        if a.home != from_shard as u32 {
                            self.cross_shard_fetches += 1;
                        }
                    }
                }
                // Fleet devices: the chunk's I/O (nothing on a cache hit)
                // plus injected latency runs on the *delivering* shard;
                // the fanned-out scans are CPU on the *leg* shard, ready
                // no earlier than the delivery.
                let io = if fetched.from_disk {
                    self.snapshot.model().io_time(fetched.chunk.bytes_read) + injected
                } else {
                    injected
                };
                let io_done = self.nodes[from_shard].clock.io_done_after(io);
                let scan = self.snapshot.model().scan_time(fetched.chunk.payload.len());
                let mut cpu = VirtualDuration::ZERO;
                for _ in &fed_ids {
                    cpu += scan;
                }
                let done = self.nodes[shard].clock.cpu_after(io_done, cpu);

                for id in fed_ids {
                    let Some(a) = self.active.get_mut(&id) else {
                        continue;
                    };
                    let Some(leg) = a.legs.get_mut(&(shard as u32)) else {
                        continue;
                    };
                    if leg.next_wanted() != Some(chunk_id) {
                        continue;
                    }
                    leg.step_with(&fetched.chunk)?;
                    self.stats.feeds += 1;
                    let rank = a.rank_of.get(chunk_id).copied().unwrap_or(u32::MAX) as usize;
                    a.buffered.insert(
                        rank,
                        (
                            chunk_id,
                            LegOutcome::Scanned {
                                bytes_read: fetched.chunk.bytes_read,
                                count: fetched.chunk.payload.len() as u32,
                                entries: leg.neighbor_entries(),
                            },
                            done,
                        ),
                    );
                    self.drain(id)?;
                }
            }
            FleetAcquired::Lost { spent } => {
                self.stats.ticks += 1;
                self.stats.chunks_abandoned += 1;
                let done = self.nodes[shard]
                    .clock
                    .chunk_overlapped(spent, VirtualDuration::ZERO);
                for id in fed_ids {
                    let Some(a) = self.active.get_mut(&id) else {
                        continue;
                    };
                    let Some(leg) = a.legs.get_mut(&(shard as u32)) else {
                        continue;
                    };
                    if leg.next_wanted() != Some(chunk_id) {
                        continue;
                    }
                    leg.skip_unavailable(spent)?;
                    let rank = a.rank_of.get(chunk_id).copied().unwrap_or(u32::MAX) as usize;
                    a.buffered
                        .insert(rank, (chunk_id, LegOutcome::Lost { spent }, done));
                    self.drain(id)?;
                }
            }
        }
        Ok(())
    }

    /// Which chunk to serve on `shard` this tick, and to which queries —
    /// the solo policies, restricted to the shard's runnable legs.
    fn pick(&self, shard: usize) -> Option<(usize, Vec<u64>)> {
        match self.config.policy {
            Policy::FairShare => {
                let runnable: Vec<u64> = self
                    .active
                    .iter()
                    .filter(|(_, a)| self.leg_wanted(a, shard).is_some())
                    .map(|(id, _)| *id)
                    .collect();
                let id = runnable
                    .iter()
                    .find(|&&id| id > self.fair_cursor)
                    .or_else(|| runnable.first())
                    .copied()?;
                let a = self.active.get(&id)?;
                Some((self.leg_wanted(a, shard)?, vec![id]))
            }
            Policy::EarliestDeadline => {
                // Same key as the solo scheduler: (deadline, remaining
                // work, id).
                let mut best: Option<(u64, f64, usize)> = None;
                for (id, a) in &self.active {
                    if self.leg_wanted(a, shard).is_none() {
                        continue;
                    }
                    let d = a.deadline.as_secs();
                    let w = a.gather.remaining_work_estimate();
                    let better = match best {
                        None => true,
                        Some((_, bd, bw)) => match d.total_cmp(&bd) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Equal => w < bw,
                            std::cmp::Ordering::Greater => false,
                        },
                    };
                    if better {
                        best = Some((*id, d, w));
                    }
                }
                let (id, _, _) = best?;
                let a = self.active.get(&id)?;
                Some((self.leg_wanted(a, shard)?, vec![id]))
            }
            Policy::MostWantedChunk => {
                let mut wanted: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
                for (id, a) in &self.active {
                    if let Some(c) = self.leg_wanted(a, shard) {
                        wanted.entry(c).or_default().push(*id);
                    }
                }
                let mut best: Option<(usize, usize)> = None;
                for (c, ids) in &wanted {
                    let better = match best {
                        None => true,
                        Some((_, n)) => ids.len() > n,
                    };
                    if better {
                        best = Some((*c, ids.len()));
                    }
                }
                let (chunk, _) = best?;
                let ids = wanted.remove(&chunk)?;
                Some((chunk, ids))
            }
        }
    }

    /// Fetches `chunk_id` with copy-by-copy failover: probe the owners in
    /// placement order (skipping statically-down shards — routing knows
    /// they are down, no probe is spent), retrying each live copy per the
    /// retry policy before failing over. Fault verdicts come from the
    /// plan under the configured [`LossScope`]; the accumulated probe
    /// cost rides the delivery's injected latency, exactly like the solo
    /// scheduler's retry accounting.
    fn acquire(&mut self, requesters: &[u64], chunk_id: usize) -> Result<FleetAcquired> {
        let owners: Vec<u32> = self.map.owners(chunk_id).to_vec();
        let primary = owners.first().copied().unwrap_or(0);
        let Some(plan) = self.config.fault_plan else {
            // Fault-free: one plain fetch from the routed owner.
            let Some(&owner) = owners
                .iter()
                .find(|&&s| !self.down.get(s as usize).copied().unwrap_or(false))
            else {
                return Ok(FleetAcquired::Lost {
                    spent: self.down_probe_cost(chunk_id),
                });
            };
            let o = owner as usize;
            let node = &mut self.nodes[o];
            let fetched = node.source.fetch_through(
                requesters.get(o).copied().unwrap_or(0),
                chunk_id,
                &mut node.reader,
            )?;
            if owner != primary {
                self.failovers += 1;
            }
            return Ok(FleetAcquired::Delivered {
                fetched,
                injected: VirtualDuration::ZERO,
                from_shard: o,
            });
        };
        let policy = self.config.retry;
        let mut probes = 0u32;
        let mut spent = VirtualDuration::ZERO;
        for &owner in &owners {
            let o = owner as usize;
            if self.down.get(o).copied().unwrap_or(false) {
                continue;
            }
            // Whether the permanent draw kills this copy.
            let lost_here = plan.is_permanently_lost(chunk_id)
                && (self.config.loss_scope == LossScope::AllCopies || owner == primary);
            let mut copy_attempts = 0u32;
            loop {
                let attempt = {
                    let slot = self.nodes[o].chaos_attempts.entry(chunk_id).or_insert(0);
                    let attempt = *slot;
                    *slot += 1;
                    attempt
                };
                let verdict: std::result::Result<VirtualDuration, ErrorClass> = if lost_here {
                    Err(ErrorClass::Permanent)
                } else {
                    match plan.attempt_fault(chunk_id, attempt) {
                        Fault::Deliver { delay } => Ok(delay),
                        Fault::Permanent => Err(ErrorClass::Permanent),
                        Fault::Transient | Fault::ShortRead => Err(ErrorClass::Transient),
                        Fault::Corrupt => Err(ErrorClass::Corrupt),
                    }
                };
                let class = match verdict {
                    Ok(delay) => {
                        let node = &mut self.nodes[o];
                        match node.source.fetch_through(
                            requesters.get(o).copied().unwrap_or(0),
                            chunk_id,
                            &mut node.reader,
                        ) {
                            Ok(fetched) => {
                                if owner != primary {
                                    self.failovers += 1;
                                }
                                return Ok(FleetAcquired::Delivered {
                                    fetched,
                                    injected: spent + delay,
                                    from_shard: o,
                                });
                            }
                            Err(e) => e.class(),
                        }
                    }
                    Err(class) => class,
                };
                spent += policy.attempt_cost(probes);
                probes += 1;
                copy_attempts += 1;
                if class == ErrorClass::Permanent || copy_attempts >= policy.max_attempts {
                    break; // this copy is spent; fail over to the next
                }
                self.stats.fetch_retries += 1;
            }
        }
        Ok(FleetAcquired::Lost { spent })
    }

    /// Drains `id`'s gather: incorporate buffered (and pre-booked
    /// unreachable) outcomes while the cursor rank is available, retiring
    /// the query when its stop rule fires. Leftover buffered outcomes of a
    /// retired query are discarded — that speculative leg work was already
    /// charged to the shard clocks.
    fn drain(&mut self, id: u64) -> Result<()> {
        loop {
            let stopped = {
                let Some(a) = self.active.get_mut(&id) else {
                    return Ok(());
                };
                let cursor = a.gather.cursor();
                if let Some(spent) = a.unreachable.remove(&cursor) {
                    let chunk = a.gather.ranking().chunk_at(cursor);
                    a.gather.incorporate(chunk, &LegOutcome::Lost { spent })?;
                    self.stats.chunks_abandoned += 1;
                } else if let Some((chunk, outcome, done)) = a.buffered.remove(&cursor) {
                    a.gather.incorporate(chunk, &outcome)?;
                    a.finish = a.finish.max(done);
                } else {
                    return Ok(());
                }
                a.gather.stop_satisfied()
            };
            if stopped {
                if let Some(a) = self.active.remove(&id) {
                    self.retire(id, a);
                }
                return Ok(());
            }
        }
    }

    /// Books a finished query: recycle the global ranking, record the
    /// completion at the fleet finish time.
    fn retire(&mut self, id: u64, active: FleetActive) {
        let arrival = active.arrival;
        let deadline = active.deadline;
        let finish = active.finish;
        let (result, ranking) = active.gather.into_result_and_ranking();
        self.spare_rankings.push(ranking);
        self.stats.completed += 1;
        if result.log.degradation.is_degraded() {
            self.stats.sessions_degraded += 1;
        }
        if finish.as_secs() > deadline.as_secs() {
            self.stats.deadline_misses += 1;
        }
        self.completions.push(Completion {
            id,
            arrival,
            deadline,
            finish,
            result,
        });
    }
}

impl std::fmt::Debug for FleetScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetScheduler")
            .field("policy", &self.config.policy)
            .field("shards", &self.config.n_shards)
            .field("replication", &self.map.replication())
            .field("placement", &self.config.placement)
            .field("active", &self.active.len())
            .field("queued", &self.pending.len())
            .field("completed", &self.stats.completed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Scheduler, SchedulerConfig};
    use eff2_chaos::FaultConfig;
    use eff2_core::chunkers::{ChunkFormer, SrTreeChunker};
    use eff2_core::index::ChunkIndex;
    use eff2_core::search::{ResultFidelity, SearchResult};
    use eff2_descriptor::{Descriptor, DescriptorSet};
    use eff2_storage::diskmodel::DiskModel;
    use eff2_storage::ChunkStore;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eff2_fleet_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn lumpy_set(n: usize) -> DescriptorSet {
        (0..n)
            .map(|i| {
                let blob = (i % 5) as f32 * 20.0;
                let mut v = Vector::splat(blob);
                v[0] += ((i * 31) % 23) as f32 * 0.3;
                v[3] -= ((i * 17) % 19) as f32 * 0.2;
                Descriptor::new(i as u32, v)
            })
            .collect()
    }

    fn snapshot(tag: &str, n: usize, leaf: usize) -> (Snapshot, DescriptorSet) {
        let set = lumpy_set(n);
        let formation = SrTreeChunker { leaf_size: leaf }.form(&set);
        let store =
            ChunkStore::create(&tmp_dir(tag), "s", &set, &formation.chunks, 512).expect("create");
        (
            ChunkIndex::from_store(store, DiskModel::ata_2005()).snapshot(),
            set,
        )
    }

    fn trace(set: &DescriptorSet, n: usize, gap_ms: f64) -> Vec<(Vector, VirtualDuration)> {
        (0..n)
            .map(|i| {
                let q = set.vector_owned((i * 37) % set.len());
                (q, VirtualDuration::from_ms(gap_ms * i as f64))
            })
            .collect()
    }

    fn assert_result_bits(want: &SearchResult, got: &SearchResult, tag: &str) {
        assert_eq!(want.neighbors.len(), got.neighbors.len(), "{tag}: k");
        for (w, g) in want.neighbors.iter().zip(got.neighbors.iter()) {
            assert_eq!(w.id, g.id, "{tag}: id");
            assert_eq!(w.dist.to_bits(), g.dist.to_bits(), "{tag}: dist");
        }
        assert_eq!(want.log.chunks_read, got.log.chunks_read, "{tag}: chunks");
        assert_eq!(want.log.bytes_read, got.log.bytes_read, "{tag}: bytes");
        assert_eq!(want.log.completed, got.log.completed, "{tag}: completed");
        assert_eq!(
            want.log.total_virtual.as_secs().to_bits(),
            got.log.total_virtual.as_secs().to_bits(),
            "{tag}: total_virtual"
        );
        assert_eq!(want.log.events.len(), got.log.events.len(), "{tag}: events");
        for (w, g) in want.log.events.iter().zip(got.log.events.iter()) {
            assert_eq!(w.chunk_id, g.chunk_id, "{tag}: event chunk");
            assert_eq!(
                w.completed_at.as_secs().to_bits(),
                g.completed_at.as_secs().to_bits(),
                "{tag}: event time"
            );
            assert_eq!(w.kth_dist.to_bits(), g.kth_dist.to_bits(), "{tag}: kth");
        }
    }

    #[test]
    fn one_shard_quiet_fleet_reproduces_the_solo_scheduler_bit_for_bit() {
        let (snap, set) = snapshot("onesolo", 600, 30);
        let params = SearchParams::exact(8);
        let queries = trace(&set, 12, 3.0);
        for policy in Policy::ALL {
            let mut solo_config = SchedulerConfig::new(policy, 4);
            solo_config.max_queued = queries.len();
            let solo = Scheduler::new(snap.clone(), solo_config)
                .serve_trace(&queries, &params)
                .expect("solo");
            let mut fleet_config = FleetConfig::new(policy, 1, 4);
            fleet_config.max_queued = queries.len();
            let fleet = FleetScheduler::new(snap.clone(), fleet_config)
                .serve_trace(&queries, &params)
                .expect("fleet");
            assert_eq!(fleet.cross_shard_fetches, 0);
            assert_eq!(fleet.failovers, 0);
            let (a, b) = (&solo, &fleet.report);
            assert_eq!(a.completions.len(), b.completions.len());
            assert_eq!(a.stats.fetches, b.stats.fetches, "{}", policy.name());
            assert_eq!(a.stats.disk_reads, b.stats.disk_reads);
            assert_eq!(a.stats.disk_reads_by_shard, b.stats.disk_reads_by_shard);
            assert_eq!(a.stats.feeds, b.stats.feeds);
            assert_eq!(
                a.makespan.as_secs().to_bits(),
                b.makespan.as_secs().to_bits(),
                "{}: a one-shard fleet is the solo device",
                policy.name()
            );
            for (x, y) in a.completions.iter().zip(b.completions.iter()) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.finish.as_secs().to_bits(), y.finish.as_secs().to_bits());
                assert_result_bits(
                    &x.result,
                    &y.result,
                    &format!("{} q{}", policy.name(), x.id),
                );
            }
        }
    }

    #[test]
    fn merged_answers_bit_identical_to_serial_across_shards_and_placements() {
        let (snap, set) = snapshot("scatter", 600, 30);
        let params = SearchParams::exact(8);
        let queries = trace(&set, 10, 1.0);
        let serial: Vec<SearchResult> = queries
            .iter()
            .map(|(q, _)| snap.search(q, &params).expect("serial"))
            .collect();
        for placement in Placement::ALL {
            for n_shards in [1usize, 3, 5] {
                for policy in Policy::ALL {
                    let mut config = FleetConfig::new(policy, n_shards, 4);
                    config.placement = placement;
                    config.replication = 2;
                    config.max_queued = queries.len();
                    let report = FleetScheduler::new(snap.clone(), config)
                        .serve_trace(&queries, &params)
                        .expect("fleet");
                    assert_eq!(report.report.completions.len(), queries.len());
                    for (c, want) in report.report.completions.iter().zip(serial.iter()) {
                        assert_result_bits(
                            want,
                            &c.result,
                            &format!(
                                "{}/{}x/{} q{}",
                                placement.name(),
                                n_shards,
                                policy.name(),
                                c.id
                            ),
                        );
                    }
                    let by_shard: u64 = report.report.stats.disk_reads_by_shard.iter().sum();
                    assert_eq!(by_shard, report.report.stats.disk_reads);
                    assert_eq!(report.report.stats.disk_reads_by_shard.len(), n_shards);
                }
            }
        }
    }

    fn chaos_fleet(
        snap: &Snapshot,
        queries: &[(Vector, VirtualDuration)],
        params: &SearchParams,
        replication: usize,
        scope: LossScope,
        plan: FaultPlan,
    ) -> FleetReport {
        let mut config = FleetConfig::new(Policy::MostWantedChunk, 4, 4);
        config.replication = replication;
        config.max_queued = queries.len();
        config.fault_plan = Some(plan);
        config.loss_scope = scope;
        config.retry = RetryPolicy::new(
            2,
            VirtualDuration::from_ms(5.0),
            VirtualDuration::from_ms(1.0),
        );
        FleetScheduler::new(snap.clone(), config)
            .serve_trace(queries, params)
            .expect("fleet")
    }

    #[test]
    fn replication_turns_permanent_loss_into_failover() {
        let (snap, set) = snapshot("failover", 600, 25);
        let params = SearchParams {
            stop: StopRule::Chunks(usize::MAX),
            ..SearchParams::exact(8)
        };
        let queries = trace(&set, 6, 1.0);
        let plan = FaultPlan::new(FaultConfig::lossy(13, 0.2));
        assert!(!plan.permanent_losses(snap.n_chunks()).is_empty());
        let serial: Vec<SearchResult> = queries
            .iter()
            .map(|(q, _)| snap.search(q, &params).expect("serial"))
            .collect();

        let solo = chaos_fleet(&snap, &queries, &params, 1, LossScope::Primary, plan);
        assert_eq!(
            solo.report.stats.sessions_degraded,
            queries.len() as u64,
            "replication 1 cannot mask a permanent loss"
        );
        for c in &solo.report.completions {
            assert_eq!(c.result.log.fidelity(), ResultFidelity::Degraded);
        }

        let replicated = chaos_fleet(&snap, &queries, &params, 2, LossScope::Primary, plan);
        assert_eq!(
            replicated.report.stats.sessions_degraded, 0,
            "a replica must serve every permanently-lost primary"
        );
        assert!(replicated.failovers > 0, "failovers must be accounted");
        for (c, want) in replicated.report.completions.iter().zip(serial.iter()) {
            assert_eq!(c.result.log.fidelity(), ResultFidelity::Exact);
            assert_eq!(c.result.neighbors.len(), want.neighbors.len());
            for (w, g) in want.neighbors.iter().zip(c.result.neighbors.iter()) {
                assert_eq!(w.id, g.id, "failover must not change the answer");
                assert_eq!(w.dist.to_bits(), g.dist.to_bits());
            }
        }
    }

    #[test]
    fn all_copies_lost_degrades_exactly_like_the_solo_scheduler() {
        let (snap, set) = snapshot("allcopies", 600, 25);
        let params = SearchParams {
            stop: StopRule::Chunks(usize::MAX),
            ..SearchParams::exact(8)
        };
        let queries = trace(&set, 6, 1.0);
        let plan = FaultPlan::new(FaultConfig::lossy(13, 0.2));
        let lost = plan.permanent_losses(snap.n_chunks());
        assert!(!lost.is_empty());
        let fleet = chaos_fleet(&snap, &queries, &params, 3, LossScope::AllCopies, plan);
        assert_eq!(
            fleet.report.stats.sessions_degraded,
            queries.len() as u64,
            "killing every copy must degrade exactly like single-device loss"
        );
        let mut solo_config = SchedulerConfig::new(Policy::MostWantedChunk, 4);
        solo_config.max_queued = queries.len();
        solo_config.fault_plan = Some(plan);
        solo_config.retry = RetryPolicy::new(
            2,
            VirtualDuration::from_ms(5.0),
            VirtualDuration::from_ms(1.0),
        );
        let solo = Scheduler::new(snap.clone(), solo_config)
            .serve_trace(&queries, &params)
            .expect("solo");
        for (f, s) in fleet.report.completions.iter().zip(solo.completions.iter()) {
            let mut f_lost = f.result.log.degradation.lost_chunks.clone();
            let mut s_lost = s.result.log.degradation.lost_chunks.clone();
            f_lost.sort_unstable();
            s_lost.sort_unstable();
            assert_eq!(f_lost, s_lost, "q{}: same lost set as the solo run", f.id);
            assert_eq!(f.result.log.fidelity(), s.result.log.fidelity());
            for (w, g) in s.result.neighbors.iter().zip(f.result.neighbors.iter()) {
                assert_eq!(w.id, g.id);
                assert_eq!(w.dist.to_bits(), g.dist.to_bits());
            }
        }
    }

    #[test]
    fn whole_shard_down_fails_over_with_replication_and_degrades_without() {
        let (snap, set) = snapshot("sharddown", 600, 25);
        let params = SearchParams {
            stop: StopRule::Chunks(usize::MAX),
            ..SearchParams::exact(8)
        };
        let queries = trace(&set, 5, 1.0);
        let run = |replication: usize| {
            let mut config = FleetConfig::new(Policy::FairShare, 4, 4);
            config.replication = replication;
            config.max_queued = queries.len();
            config.shard_faults = ShardFaultPlan::fixed(&[1]);
            FleetScheduler::new(snap.clone(), config)
                .serve_trace(&queries, &params)
                .expect("fleet")
        };
        let bare = run(1);
        assert_eq!(
            bare.report.stats.sessions_degraded,
            queries.len() as u64,
            "without replication a downed shard's chunks are unreachable"
        );
        for c in &bare.report.completions {
            assert!(c.result.log.degradation.chunks_lost > 0);
        }
        let replicated = run(2);
        assert_eq!(replicated.report.stats.sessions_degraded, 0);
        assert!(
            replicated.failovers > 0,
            "reads on the downed shard must fail over to replicas"
        );
        assert_eq!(
            replicated.report.stats.disk_reads_by_shard[1], 0,
            "a downed shard serves nothing"
        );
        for c in &replicated.report.completions {
            assert_eq!(c.result.log.fidelity(), ResultFidelity::Exact);
        }
    }

    #[test]
    fn centroid_locality_reports_placement_metrics() {
        let (snap, set) = snapshot("placement", 800, 25);
        let params = SearchParams::exact(8);
        let queries = trace(&set, 8, 1.0);
        let run = |placement: Placement| {
            let mut config = FleetConfig::new(Policy::FairShare, 4, 4);
            config.placement = placement;
            config.max_queued = queries.len();
            FleetScheduler::new(snap.clone(), config)
                .serve_trace(&queries, &params)
                .expect("fleet")
        };
        for placement in Placement::ALL {
            let report = run(placement);
            assert!(report.imbalance_factor >= 1.0);
            assert_eq!(report.per_shard_primary_chunks.len(), 4);
            assert_eq!(
                report.per_shard_primary_chunks.iter().sum::<usize>(),
                snap.n_chunks()
            );
        }
    }
}
