// lint:allow-file(panic.index): the parser cursor is bounded by the length checks of the tokenizer loop
#![warn(missing_docs)]

//! # eff2-json
//!
//! A minimal JSON value model, parser and writer. The workspace persists a
//! handful of artefacts as JSON — workloads, ground truth, quality curves,
//! index metadata — and the build environment has no crates.io access, so
//! this crate replaces `serde`/`serde_json` for exactly those needs.
//!
//! Numbers are stored as `f64`. Writing uses Rust's shortest-roundtrip
//! float formatting, so every `f32`/`f64`/`u32` value survives a
//! write/parse cycle bit-exactly (integers up to 2^53 are exact).
//! Non-finite numbers are written as `null` and parse back as `f64::NAN`.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse or shape error, with a byte offset for parse errors.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the parse failure (0 for shape errors).
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl From<JsonError> for std::io::Error {
    fn from(e: JsonError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Shorthand for fallible JSON operations.
pub type Result<T> = std::result::Result<T, JsonError>;

fn shape_err<T>(message: impl Into<String>) -> Result<T> {
    Err(JsonError {
        message: message.into(),
        offset: 0,
    })
}

impl Json {
    // ----- construction helpers -----

    /// An object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A number from anything convertible to `f64`; non-finite values
    /// become `null`.
    pub fn num(v: impl Into<f64>) -> Json {
        let v = v.into();
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// A number from a `usize` (exact up to 2^53).
    pub fn from_usize(v: usize) -> Json {
        Json::Num(v as f64)
    }

    /// An array of `u32`s.
    pub fn u32_array(vs: &[u32]) -> Json {
        Json::Arr(vs.iter().map(|&v| Json::Num(f64::from(v))).collect())
    }

    /// An array of `f32`s.
    pub fn f32_array(vs: &[f32]) -> Json {
        Json::Arr(vs.iter().map(|&v| Json::num(v)).collect())
    }

    /// An array of `f64`s (non-finite elements become `null`).
    pub fn f64_array(vs: &[f64]) -> Json {
        Json::Arr(vs.iter().map(|&v| Json::num(v)).collect())
    }

    // ----- accessors -----

    /// The value under `key`, for objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value under `key`, or a shape error naming the key.
    pub fn field(&self, key: &str) -> Result<&Json> {
        match self.get(key) {
            Some(v) => Ok(v),
            None => shape_err(format!("missing field `{key}`")),
        }
    }

    /// The elements, for arrays.
    pub fn as_arr(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            other => shape_err(format!("expected array, found {}", other.kind())),
        }
    }

    /// The string contents.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            other => shape_err(format!("expected string, found {}", other.kind())),
        }
    }

    /// The number as `f64`; `null` reads as `NAN` (the writer's encoding of
    /// non-finite values).
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Json::Num(v) => Ok(*v),
            Json::Null => Ok(f64::NAN),
            other => shape_err(format!("expected number, found {}", other.kind())),
        }
    }

    /// The number as `f32`.
    pub fn as_f32(&self) -> Result<f32> {
        self.as_f64().map(|v| v as f32)
    }

    /// The number as a non-negative integer.
    pub fn as_u64(&self) -> Result<u64> {
        let v = self.as_f64()?;
        if v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v <= 2f64.powi(53) {
            Ok(v as u64)
        } else {
            shape_err(format!("expected unsigned integer, found {v}"))
        }
    }

    /// The number as `u32`.
    pub fn as_u32(&self) -> Result<u32> {
        let v = self.as_u64()?;
        u32::try_from(v).map_err(|_| JsonError {
            message: format!("{v} does not fit in u32"),
            offset: 0,
        })
    }

    /// The number as `usize`.
    pub fn as_usize(&self) -> Result<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// Decodes an array of `u32`s.
    pub fn to_u32_vec(&self) -> Result<Vec<u32>> {
        self.as_arr()?.iter().map(Json::as_u32).collect()
    }

    /// Decodes an array of `f32`s.
    pub fn to_f32_vec(&self) -> Result<Vec<f32>> {
        self.as_arr()?.iter().map(Json::as_f32).collect()
    }

    /// Decodes an array of `f64`s.
    pub fn to_f64_vec(&self) -> Result<Vec<f64>> {
        self.as_arr()?.iter().map(Json::as_f64).collect()
    }

    /// Decodes an array of `usize`s.
    pub fn to_usize_vec(&self) -> Result<Vec<usize>> {
        self.as_arr()?.iter().map(Json::as_usize).collect()
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    // ----- writing -----

    /// Appends the compact serialisation to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(*v, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    // ----- parsing -----

    /// Parses one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                message: "trailing content after document".into(),
                offset: pos,
            });
        }
        Ok(value)
    }
}

/// Compact serialisation (`to_string` comes via `Display`).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_num(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else {
        // Rust's Display for floats is shortest-roundtrip; integral values
        // print without a fraction ("3"), which is still valid JSON.
        use fmt::Write;
        let _ = write!(out, "{v}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_err<T>(message: impl Into<String>, offset: usize) -> Result<T> {
    Err(JsonError {
        message: message.into(),
        offset,
    })
}

fn expect_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<()> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        parse_err(format!("expected `{lit}`"), *pos)
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return parse_err("unexpected end of input", *pos);
    };
    match b {
        b'n' => expect_literal(bytes, pos, "null").map(|()| Json::Null),
        b't' => expect_literal(bytes, pos, "true").map(|()| Json::Bool(true)),
        b'f' => expect_literal(bytes, pos, "false").map(|()| Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return parse_err("expected `,` or `]`", *pos),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return parse_err("expected `:`", *pos);
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return parse_err("expected `,` or `}`", *pos),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => parse_err(format!("unexpected byte `{}`", other as char), *pos),
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| JsonError {
        message: "invalid utf-8 in number".into(),
        offset: start,
    })?;
    match text.parse::<f64>() {
        Ok(v) => Ok(Json::Num(v)),
        Err(_) => parse_err(format!("invalid number `{text}`"), start),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return parse_err("expected string", *pos);
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return parse_err("unterminated string", *pos);
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return parse_err("unterminated escape", *pos);
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok());
                        let Some(code) = hex else {
                            return parse_err("invalid \\u escape", *pos);
                        };
                        *pos += 4;
                        // Surrogate pairs: non-BMP characters arrive as two
                        // \u escapes.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                let low = bytes
                                    .get(*pos + 2..*pos + 6)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok());
                                match low {
                                    Some(l) if (0xDC00..0xE000).contains(&l) => {
                                        *pos += 6;
                                        0x10000 + ((code - 0xD800) << 10) + (l - 0xDC00)
                                    }
                                    _ => return parse_err("unpaired surrogate", *pos),
                                }
                            } else {
                                return parse_err("unpaired surrogate", *pos);
                            }
                        } else {
                            code
                        };
                        match char::from_u32(c) {
                            Some(c) => out.push(c),
                            None => return parse_err("invalid unicode escape", *pos),
                        }
                    }
                    other => {
                        return parse_err(format!("invalid escape `\\{}`", other as char), *pos)
                    }
                }
            }
            _ => {
                // Consume one UTF-8 character (the input is a &str, so the
                // bytes are valid UTF-8).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| JsonError {
                    message: "invalid utf-8".into(),
                    offset: *pos,
                })?;
                let Some(c) = rest.chars().next() else {
                    return Err(JsonError {
                        message: "invalid utf-8".into(),
                        offset: *pos,
                    });
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-1.5", "\"hi\""] {
            let v = Json::parse(text).expect("parse");
            assert_eq!(Json::parse(&v.to_string()).expect("reparse"), v);
        }
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &x in &[0.1f64, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0, 1e-300] {
            let v = Json::Num(x);
            let back = Json::parse(&v.to_string()).expect("parse");
            assert_eq!(back.as_f64().expect("num").to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn f32_values_roundtrip_exactly() {
        for &x in &[0.1f32, 1.0 / 3.0, f32::MAX, f32::MIN_POSITIVE, 1234.5678] {
            let v = Json::num(x);
            let back = Json::parse(&v.to_string()).expect("parse");
            assert_eq!(back.as_f32().expect("num").to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn non_finite_becomes_null_and_reads_as_nan() {
        assert_eq!(Json::num(f64::NAN).to_string(), "null");
        assert_eq!(Json::num(f64::INFINITY).to_string(), "null");
        let back = Json::parse("null").expect("parse");
        assert!(back.as_f64().expect("as num").is_nan());
    }

    #[test]
    fn objects_preserve_order_and_lookup() {
        let v = Json::obj(vec![
            ("b", Json::from_usize(1)),
            ("a", Json::Str("x".into())),
        ]);
        let text = v.to_string();
        assert_eq!(text, "{\"b\":1,\"a\":\"x\"}");
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back.field("b").expect("b").as_usize().expect("usize"), 1);
        assert_eq!(back.field("a").expect("a").as_str().expect("str"), "x");
        assert!(back.field("zzz").is_err());
    }

    #[test]
    fn nested_arrays() {
        let v = Json::Arr(vec![Json::u32_array(&[1, 2]), Json::u32_array(&[3])]);
        let back = Json::parse(&v.to_string()).expect("parse");
        let rows: Vec<Vec<u32>> = back
            .as_arr()
            .expect("arr")
            .iter()
            .map(|r| r.to_u32_vec().expect("ids"))
            .collect();
        assert_eq!(rows, vec![vec![1, 2], vec![3]]);
    }

    #[test]
    fn string_escapes() {
        let original = "line\nquote\"slash\\tab\tunicode\u{2603}control\u{1}";
        let v = Json::Str(original.to_string());
        let back = Json::parse(&v.to_string()).expect("parse");
        assert_eq!(back.as_str().expect("str"), original);
        // Escapes produced by other writers parse too.
        let external = r#""aA😀\/""#;
        assert_eq!(
            Json::parse(external).expect("parse").as_str().expect("str"),
            "aA\u{1F600}/"
        );
    }

    #[test]
    fn whitespace_tolerant() {
        let v = Json::parse(" { \"k\" : [ 1 , 2 ] , \"s\" : null } ").expect("parse");
        assert_eq!(
            v.field("k").expect("k").to_u32_vec().expect("ids"),
            vec![1, 2]
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "[1] extra",
            "\"unterminated",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn integer_guards() {
        assert!(Json::parse("1.5").expect("parse").as_u64().is_err());
        assert!(Json::parse("-2").expect("parse").as_u64().is_err());
        assert!(Json::parse("4294967296").expect("parse").as_u32().is_err());
        assert_eq!(
            Json::parse("4294967295")
                .expect("parse")
                .as_u32()
                .expect("u32"),
            u32::MAX
        );
    }
}
