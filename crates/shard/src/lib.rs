//! Chunk-to-shard placement for fleet serving.
//!
//! The serving fleet partitions the chunk index across N shard nodes, each
//! with its own disk/CPU pipeline. A [`ShardMap`] records, for every chunk,
//! the **ordered** list of shards holding a copy — primary first, then
//! R − 1 replicas — so reads go to the primary and fail over replica by
//! replica in a deterministic order.
//!
//! Two placement policies are compared head-to-head:
//!
//! * [`Placement::ChunkHash`] — the primary shard is a hash of the chunk
//!   id. Placement is oblivious to geometry, so chunks that rank adjacently
//!   for a query scatter across the fleet, but the chunk *count* per shard
//!   is near-uniform.
//! * [`Placement::CentroidLocality`] — whole coarse-quantizer cells
//!   (clusters of chunks whose centroids are close — see
//!   `eff2_core::CoarseQuantizer`) are assigned greedily, largest cell
//!   first, to the least-loaded shard. Chunks a query ranks together tend
//!   to share a cell and therefore a shard, which cuts cross-shard fetches
//!   at the price of coarser-grained (and therefore lumpier) balance.
//!
//! That balance price is reported with the **imbalance factor** of
//! Tavenard, Amsaleg and Jégou (*Balancing clusters to reduce response
//! time variability*): the most-loaded shard's primary chunk count divided
//! by the mean — 1.0 is perfect balance, and the factor directly bounds
//! how much slower the slowest scatter leg is than the average one.
//!
//! Everything here is a pure function of its inputs — no clocks, no
//! ambient randomness, no hash-map iteration — so a `ShardMap` built twice
//! from the same store is identical, and fleet results stay reproducible.

/// How primary copies are assigned to shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Primary shard = hash(chunk id) mod n_shards.
    ChunkHash,
    /// Whole coarse cells assigned greedily (largest first) to the
    /// least-loaded shard.
    CentroidLocality,
}

impl Placement {
    /// Both policies, for sweeps.
    pub const ALL: [Placement; 2] = [Placement::ChunkHash, Placement::CentroidLocality];

    /// A short stable name for tables and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            Placement::ChunkHash => "chunk-hash",
            Placement::CentroidLocality => "centroid-locality",
        }
    }
}

/// SplitMix64 finaliser — the same mixing discipline `eff2-chaos` uses for
/// fault draws, reproduced here so the shard crate stays dependency-free.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The placement table: for every chunk, the ordered shard copies
/// (primary first). Built once per fleet configuration and shared by every
/// query.
#[derive(Clone, Debug)]
pub struct ShardMap {
    /// `owners[chunk]` = shards holding a copy, primary first. Length is
    /// `min(replication, n_shards)` for every chunk — replicating onto the
    /// same shard twice would be a lie.
    owners: Vec<Vec<u32>>,
    n_shards: usize,
    replication: usize,
}

impl ShardMap {
    /// Hash placement: chunk `c`'s primary is `mix(c) mod n_shards`;
    /// replicas are the next shards round-robin.
    pub fn chunk_hash(n_chunks: usize, n_shards: usize, replication: usize) -> ShardMap {
        let n_shards = n_shards.max(1);
        let copies = replication.clamp(1, n_shards);
        let owners = (0..n_chunks)
            .map(|c| {
                let primary = (mix(c as u64) % n_shards as u64) as u32;
                (0..copies)
                    .map(|r| (primary + r as u32) % n_shards as u32)
                    .collect()
            })
            .collect();
        ShardMap {
            owners,
            n_shards,
            replication: copies,
        }
    }

    /// Centroid-locality placement over coarse cells: `cells[i]` lists the
    /// member chunk ids of cell `i` (what `CoarseQuantizer::cells` yields).
    /// Cells are assigned whole, largest first (ties by lower cell id), to
    /// the shard with the fewest primary chunks so far (ties by lower shard
    /// id) — the classic greedy bin-packing that keeps the imbalance factor
    /// bounded while preserving cell locality. Chunks not named by any cell
    /// (there should be none) fall back to hash placement.
    pub fn from_cells(
        cells: &[Vec<u32>],
        n_chunks: usize,
        n_shards: usize,
        replication: usize,
    ) -> ShardMap {
        let n_shards = n_shards.max(1);
        let copies = replication.clamp(1, n_shards);
        let mut order: Vec<usize> = (0..cells.len()).collect();
        order.sort_by(|&a, &b| {
            let (la, lb) = (
                cells.get(a).map_or(0, Vec::len),
                cells.get(b).map_or(0, Vec::len),
            );
            lb.cmp(&la).then(a.cmp(&b))
        });
        let mut primary_of: Vec<Option<u32>> = vec![None; n_chunks];
        let mut load = vec![0usize; n_shards];
        for cell in order {
            // lint:allow(panic.index): full-range slice of an empty literal cannot panic
            let members = cells.get(cell).map_or(&[][..], Vec::as_slice);
            if members.is_empty() {
                continue;
            }
            let target = load
                .iter()
                .enumerate()
                .min_by_key(|&(s, &l)| (l, s))
                .map_or(0, |(s, _)| s);
            if let Some(l) = load.get_mut(target) {
                *l += members.len();
            }
            for &m in members {
                if let Some(slot) = primary_of.get_mut(m as usize) {
                    *slot = Some(target as u32);
                }
            }
        }
        let owners = primary_of
            .iter()
            .enumerate()
            .map(|(c, p)| {
                let primary = p.unwrap_or((mix(c as u64) % n_shards as u64) as u32);
                (0..copies)
                    .map(|r| (primary + r as u32) % n_shards as u32)
                    .collect()
            })
            .collect();
        ShardMap {
            owners,
            n_shards,
            replication: copies,
        }
    }

    /// Number of shard nodes.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Copies per chunk (after clamping to the shard count).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Number of chunks placed.
    pub fn n_chunks(&self) -> usize {
        self.owners.len()
    }

    /// The ordered copy list of `chunk` (primary first); empty for
    /// out-of-range chunks.
    pub fn owners(&self, chunk: usize) -> &[u32] {
        self.owners.get(chunk).map_or(&[], Vec::as_slice)
    }

    /// The primary shard of `chunk`, or `None` out of range.
    pub fn primary(&self, chunk: usize) -> Option<u32> {
        self.owners(chunk).first().copied()
    }

    /// Primary chunk count per shard.
    pub fn primary_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_shards];
        for copies in &self.owners {
            if let Some(slot) = copies.first().and_then(|&p| counts.get_mut(p as usize)) {
                *slot += 1;
            }
        }
        counts
    }

    /// The Tavenard/Amsaleg/Jégou imbalance factor of the primary
    /// placement: max primary load over mean primary load, via the shared
    /// [`eff2_metrics::imbalance_factor`] definition. 1.0 is perfect
    /// balance; an empty map (or a single shard) is trivially balanced.
    pub fn imbalance_factor(&self) -> f64 {
        if self.owners.is_empty() || self.n_shards == 0 {
            return 1.0;
        }
        eff2_metrics::imbalance_factor(&self.primary_counts())
    }

    /// The shard a read of `chunk` is routed to when the shards flagged in
    /// `down` are unavailable: the first copy, in owner order, whose shard
    /// is up. `None` when every copy is down (the chunk is unreachable).
    pub fn route(&self, chunk: usize, down: &[bool]) -> Option<u32> {
        self.owners(chunk)
            .iter()
            .copied()
            .find(|&s| !down.get(s as usize).copied().unwrap_or(false))
    }

    /// Per-chunk routed owners under `down` in one vector: `u32::MAX`
    /// marks an unreachable chunk. This is the `owner_of` table the
    /// scatter–gather driver feeds to `ChunkRanking::split_by_owner`.
    pub fn routed_owners(&self, down: &[bool]) -> Vec<u32> {
        (0..self.owners.len())
            .map(|c| self.route(c, down).unwrap_or(u32::MAX))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_placement_is_deterministic_and_in_range() {
        let a = ShardMap::chunk_hash(200, 7, 3);
        let b = ShardMap::chunk_hash(200, 7, 3);
        for c in 0..200 {
            assert_eq!(a.owners(c), b.owners(c));
            assert_eq!(a.owners(c).len(), 3);
            for &s in a.owners(c) {
                assert!((s as usize) < 7);
            }
        }
    }

    #[test]
    fn replication_clamps_to_shard_count() {
        let map = ShardMap::chunk_hash(10, 2, 5);
        assert_eq!(map.replication(), 2);
        for c in 0..10 {
            let copies = map.owners(c);
            assert_eq!(copies.len(), 2);
            assert_ne!(copies[0], copies[1], "copies must land on distinct shards");
        }
    }

    #[test]
    fn copies_are_distinct_shards() {
        let map = ShardMap::chunk_hash(64, 5, 3);
        for c in 0..64 {
            let mut copies = map.owners(c).to_vec();
            copies.sort_unstable();
            copies.dedup();
            assert_eq!(copies.len(), 3);
        }
    }

    #[test]
    fn cell_placement_keeps_cells_whole() {
        let cells = vec![
            vec![0, 1, 2, 3],
            vec![4, 5],
            vec![6, 7, 8],
            vec![9],
            vec![10, 11],
        ];
        let map = ShardMap::from_cells(&cells, 12, 3, 2);
        for members in &cells {
            let primaries: Vec<_> = members
                .iter()
                .map(|&m| map.primary(m as usize).expect("placed"))
                .collect();
            assert!(
                primaries.windows(2).all(|w| w[0] == w[1]),
                "cell split across shards: {primaries:?}"
            );
        }
    }

    #[test]
    fn cell_placement_balances_greedily() {
        // Four equal cells over two shards: two cells each.
        let cells: Vec<Vec<u32>> = (0..4).map(|c| (c * 5..c * 5 + 5).collect()).collect();
        let map = ShardMap::from_cells(&cells, 20, 2, 1);
        assert_eq!(map.primary_counts(), vec![10, 10]);
        assert!((map.imbalance_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_factor_flags_skew() {
        // One giant cell and three tiny ones onto two shards.
        let mut cells = vec![(0u32..9).collect::<Vec<_>>()];
        cells.extend((0..3).map(|i| vec![9 + i as u32]));
        let map = ShardMap::from_cells(&cells, 12, 2, 1);
        // 9 vs 3 primaries; mean is 6 → factor 1.5.
        assert!((map.imbalance_factor() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn single_shard_is_trivially_balanced() {
        let map = ShardMap::chunk_hash(50, 1, 3);
        assert_eq!(map.replication(), 1);
        assert!((map.imbalance_factor() - 1.0).abs() < 1e-12);
        assert_eq!(map.primary_counts(), vec![50]);
    }

    #[test]
    fn routing_fails_over_in_owner_order() {
        let map = ShardMap::chunk_hash(20, 4, 3);
        for c in 0..20 {
            let owners = map.owners(c).to_vec();
            // Nothing down: primary.
            assert_eq!(map.route(c, &[false; 4]), Some(owners[0]));
            // Primary down: first replica.
            let mut down = [false; 4];
            down[owners[0] as usize] = true;
            assert_eq!(map.route(c, &down), Some(owners[1]));
            // Everything down: unreachable.
            assert_eq!(map.route(c, &[true; 4]), None);
        }
    }

    #[test]
    fn routed_owners_mark_unreachable_with_max() {
        let map = ShardMap::chunk_hash(30, 3, 1);
        let all_up = map.routed_owners(&[false; 3]);
        assert!(all_up.iter().all(|&s| (s as usize) < 3));
        let all_down = map.routed_owners(&[true; 3]);
        assert!(all_down.iter().all(|&s| s == u32::MAX));
    }

    #[test]
    fn hash_spreads_chunks_reasonably() {
        let map = ShardMap::chunk_hash(4_000, 8, 1);
        let counts = map.primary_counts();
        assert_eq!(counts.iter().sum::<usize>(), 4_000);
        // A 64-bit mix over 4k chunks lands within 25% of uniform.
        for &c in &counts {
            assert!((c as f64 - 500.0).abs() < 125.0, "skewed counts {counts:?}");
        }
    }
}
