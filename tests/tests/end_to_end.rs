//! End-to-end integration: generate → form chunks → persist → reopen →
//! search → measure, across every chunk-forming strategy.

use eff2_bag::BagConfig;
use eff2_core::chunkers::{
    BagChunker, ChunkFormer, HybridChunker, RandomChunker, RoundRobinChunker, SrTreeChunker,
};
use eff2_core::{scan_store_knn, ChunkIndex, SearchParams};
use eff2_integration_tests::{scratch_dir, test_collection};
use eff2_metrics::precision_at;
use eff2_storage::diskmodel::DiskModel;

fn formers(set_len: usize, mpi: f32) -> Vec<(&'static str, Box<dyn ChunkFormer>)> {
    vec![
        ("sr", Box::new(SrTreeChunker { leaf_size: 200 })),
        (
            "bag",
            Box::new(BagChunker {
                config: BagConfig {
                    mpi,
                    max_passes: 200,
                    ..BagConfig::default()
                },
                target_clusters: (set_len / 200).max(2),
            }),
        ),
        (
            "roundrobin",
            Box::new(RoundRobinChunker {
                n_chunks: set_len / 200,
            }),
        ),
        (
            "random",
            Box::new(RandomChunker {
                n_chunks: set_len / 200,
                seed: 5,
            }),
        ),
        (
            "hybrid",
            Box::new(HybridChunker {
                chunk_size: 200,
                sweeps: 2,
                ..HybridChunker::default()
            }),
        ),
    ]
}

#[test]
fn every_strategy_roundtrips_and_completion_is_exact() {
    let set = test_collection(4_000, 3);
    let mpi = BagConfig::estimate_mpi(&set, 500, 3);
    for (name, former) in formers(set.len(), mpi) {
        let dir = scratch_dir(&format!("e2e_{name}"));
        let built = ChunkIndex::build(
            &dir,
            name,
            &set,
            former.as_ref(),
            4_096,
            DiskModel::ata_2005(),
        )
        .unwrap_or_else(|e| panic!("{name}: build failed: {e}"));

        // Membership invariant: retained + outliers == collection.
        assert_eq!(
            built.formation.retained() + built.formation.outliers.len(),
            set.len(),
            "{name}: descriptors lost or duplicated"
        );

        // Reopen from disk.
        let reopened = ChunkIndex::open(
            built.index.store().chunk_path(),
            built.index.store().index_path(),
            DiskModel::ata_2005(),
        )
        .expect("reopen");

        // Completion must equal the sequential scan of the same store, for
        // dataset points and off-dataset points alike.
        for q in [set.vector_owned(17), eff2_descriptor::Vector::splat(3.0)] {
            let got = reopened
                .search(&q, &SearchParams::exact(10))
                .expect("search");
            assert!(got.log.completed, "{name}: completion not proven");
            let want = scan_store_knn(reopened.store(), &q, 10).expect("scan");
            assert_eq!(got.neighbors.len(), want.len(), "{name}");
            for (g, w) in got.neighbors.iter().zip(want.iter()) {
                assert!((g.dist - w.dist).abs() < 1e-4, "{name}: {g:?} vs {w:?}");
            }
        }
    }
}

#[test]
fn approximate_search_trades_quality_for_time() {
    let set = test_collection(6_000, 9);
    let dir = scratch_dir("tradeoff");
    let built = ChunkIndex::build(
        &dir,
        "sr",
        &set,
        &SrTreeChunker { leaf_size: 150 },
        8_192,
        DiskModel::ata_2005(),
    )
    .expect("build");

    let mut avg_precision = Vec::new();
    let mut avg_time = Vec::new();
    let budgets = [1usize, 2, 4, 8, 16, usize::MAX];
    for &n_chunks in &budgets {
        let mut p_sum = 0.0;
        let mut t_sum = 0.0;
        for qi in 0..10 {
            let q = set.vector_owned(qi * 531);
            let exact = built
                .index
                .search(&q, &SearchParams::exact(20))
                .expect("exact");
            let truth: Vec<u32> = exact.neighbors.iter().map(|n| n.id).collect();
            let params = if n_chunks == usize::MAX {
                SearchParams::exact(20)
            } else {
                SearchParams::approximate(20, n_chunks)
            };
            let approx = built.index.search(&q, &params).expect("approx");
            let ids: Vec<u32> = approx.neighbors.iter().map(|n| n.id).collect();
            p_sum += precision_at(&ids, &truth);
            t_sum += approx.log.total_virtual.as_secs();
        }
        avg_precision.push(p_sum / 10.0);
        avg_time.push(t_sum / 10.0);
    }
    // Quality is monotone in budget and reaches 1; time is monotone too.
    for w in avg_precision.windows(2) {
        assert!(
            w[1] >= w[0] - 1e-9,
            "precision must not degrade with budget: {avg_precision:?}"
        );
    }
    assert!((avg_precision.last().unwrap() - 1.0).abs() < 1e-9);
    for w in avg_time.windows(2) {
        assert!(
            w[1] >= w[0] - 1e-9,
            "time must grow with budget: {avg_time:?}"
        );
    }
    // And the first-chunk answer is already substantially right for
    // dataset queries (the paper's core observation): far above what a
    // random chunk would hold (1/n_chunks of the answer in expectation).
    assert!(
        avg_precision[0] > 0.25,
        "first chunk should hold a large share of a dataset query's \
         neighbours, got {}",
        avg_precision[0]
    );
}

#[test]
fn bag_and_sr_indexes_agree_on_retained_descriptors() {
    // The lab builds SR over BAG's retained set; verify the general
    // property here with the raw pieces: after removing BAG's outliers,
    // both indexes hold exactly the same ids.
    let set = test_collection(3_000, 4);
    let mpi = BagConfig::estimate_mpi(&set, 400, 4);
    let bag = BagChunker {
        config: BagConfig {
            mpi,
            max_passes: 200,
            ..BagConfig::default()
        },
        target_clusters: 15,
    }
    .form(&set);

    let retained: Vec<usize> = {
        let mut p: Vec<u32> = bag
            .chunks
            .iter()
            .flat_map(|c| c.positions.clone())
            .collect();
        p.sort_unstable();
        p.into_iter().map(|x| x as usize).collect()
    };
    let subset = set.subset(&retained);
    let sr = SrTreeChunker {
        leaf_size: (bag.mean_chunk_size().round() as usize).max(2),
    }
    .form(&subset);

    let ids_of = |chunks: &[eff2_storage::ChunkDef], s: &eff2_descriptor::DescriptorSet| {
        let mut ids: Vec<u32> = chunks
            .iter()
            .flat_map(|c| c.positions.iter().map(|&p| s.id(p as usize).0))
            .collect();
        ids.sort_unstable();
        ids
    };
    assert_eq!(ids_of(&bag.chunks, &set), ids_of(&sr.chunks, &subset));
    // And the chunk counts land in the same ballpark (the paper's Table 1
    // shows within ±1 %; allow slack at this tiny scale).
    let ratio = sr.chunks.len() as f64 / bag.chunks.len() as f64;
    assert!((0.5..2.0).contains(&ratio), "chunk count ratio {ratio}");
}
