//! Cross-crate property tests: the system-level invariants that hold for
//! any collection and any chunk-forming strategy.

use eff2_bag::{Bag, BagConfig, EngineKind};
use eff2_core::chunkers::{ChunkFormer, RoundRobinChunker, SrTreeChunker};
use eff2_core::{scan_knn, ChunkIndex, SearchParams};
use eff2_descriptor::{Descriptor, DescriptorSet, Vector, DIM};
use eff2_storage::diskmodel::DiskModel;
use proptest::prelude::*;

fn arb_set(max: usize) -> impl Strategy<Value = DescriptorSet> {
    proptest::collection::vec(proptest::collection::vec(-50.0f32..50.0, DIM), 8..max).prop_map(
        |rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, row)| Descriptor::new(i as u32, Vector::from_slice(&row)))
                .collect()
        },
    )
}

/// Clustered sets (a few Gaussian-ish lumps) exercise the interesting
/// paths better than uniform noise.
fn arb_lumpy_set() -> impl Strategy<Value = DescriptorSet> {
    (
        proptest::collection::vec(-40.0f32..40.0, 2..5),
        proptest::collection::vec(
            (0usize..4, proptest::collection::vec(-2.0f32..2.0, DIM)),
            10..80,
        ),
    )
        .prop_map(|(centers, points)| {
            points
                .into_iter()
                .enumerate()
                .map(|(i, (c, offs))| {
                    let base = centers[c % centers.len()];
                    let mut v = Vector::splat(base);
                    for (d, o) in offs.iter().enumerate() {
                        v[d] += o;
                    }
                    Descriptor::new(i as u32, v)
                })
                .collect()
        })
}

fn tmp(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("eff2_prop_{tag}_{case}"));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Searching any chunk index to completion equals a sequential scan of
    /// the collection it stores — for any collection, chunker and k.
    #[test]
    fn completion_equals_scan(set in arb_set(120), k in 1usize..12, leaf in 3usize..40, case in 0u64..u64::MAX) {
        let dir = tmp("complete", case);
        let built = ChunkIndex::build(
            &dir, "p", &set, &SrTreeChunker { leaf_size: leaf }, 256, DiskModel::ata_2005(),
        ).expect("build");
        let q = set.vector_owned(set.len() / 2);
        let got = built.index.search(&q, &SearchParams::exact(k)).expect("search");
        let want = scan_knn(&set, &q, k);
        prop_assert_eq!(got.neighbors.len(), want.len());
        for (g, w) in got.neighbors.iter().zip(want.iter()) {
            prop_assert!((g.dist - w.dist).abs() < 1e-3, "{:?} vs {:?}", g, w);
        }
    }

    /// More chunk budget never lowers precision against the exact result.
    #[test]
    fn precision_monotone_in_budget(set in arb_set(150), case in 0u64..u64::MAX) {
        let dir = tmp("budget", case);
        let built = ChunkIndex::build(
            &dir, "p", &set, &RoundRobinChunker { n_chunks: 8 }, 256, DiskModel::ata_2005(),
        ).expect("build");
        let q = set.vector_owned(0);
        let truth: Vec<u32> = scan_knn(&set, &q, 8).into_iter().map(|n| n.id).collect();
        let mut last = -1.0f64;
        for budget in 1..=8usize {
            let r = built.index.search(&q, &SearchParams::approximate(8, budget)).expect("search");
            let ids: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
            let p = eff2_metrics::precision_at(&ids, &truth);
            prop_assert!(p >= last - 1e-9, "precision dropped: {} -> {}", last, p);
            last = p;
        }
        prop_assert!((last - 1.0).abs() < 1e-9, "full budget must be exact");
    }

    /// The BAG engines produce identical clusterings on arbitrary lumpy
    /// collections.
    #[test]
    fn bag_engines_equivalent(set in arb_lumpy_set(), mpi in 0.5f32..4.0, target in 2usize..8) {
        let cfg = |engine| BagConfig { mpi, engine, max_passes: 60, ..BagConfig::default() };
        let a = Bag::new(&set, cfg(EngineKind::Exhaustive)).run_to(target);
        let b = Bag::new(&set, cfg(EngineKind::Pruned)).run_to(target);
        let norm = |snap: &eff2_bag::BagSnapshot| {
            let mut cs: Vec<Vec<u32>> = snap.clusters.iter().map(|c| {
                let mut m = c.members.clone();
                m.sort_unstable();
                m
            }).collect();
            cs.sort();
            (cs, snap.outliers.clone(), snap.passes)
        };
        prop_assert_eq!(norm(&a), norm(&b));
    }

    /// BAG conserves descriptors and its radii cover every member, for any
    /// input and MPI.
    #[test]
    fn bag_conservation_and_coverage(set in arb_lumpy_set(), mpi in 0.3f32..5.0) {
        let cfg = BagConfig { mpi, max_passes: 60, ..BagConfig::default() };
        let snap = Bag::new(&set, cfg).run_to(3);
        prop_assert_eq!(snap.total_descriptors(), set.len());
        for c in &snap.clusters {
            for &m in &c.members {
                let d = c.centroid.dist(&set.vector_owned(m as usize));
                prop_assert!(d <= c.tight_radius * (1.0 + 1e-4) + 1e-3);
            }
        }
    }

    /// Store round-trip: whatever chunks a former produces, the store
    /// returns byte-identical descriptors.
    #[test]
    fn store_roundtrip_any_former(set in arb_set(100), leaf in 2usize..30, case in 0u64..u64::MAX) {
        let dir = tmp("roundtrip", case);
        let formation = SrTreeChunker { leaf_size: leaf }.form(&set);
        let store = eff2_storage::ChunkStore::create(&dir, "p", &set, &formation.chunks, 128)
            .expect("create");
        let mut reader = store.reader().expect("reader");
        let mut payload = eff2_storage::ChunkData::default();
        for (ci, chunk) in formation.chunks.iter().enumerate() {
            reader.read_chunk(ci, &mut payload).expect("read");
            prop_assert_eq!(payload.len(), chunk.positions.len());
            for (j, &pos) in chunk.positions.iter().enumerate() {
                prop_assert_eq!(payload.ids[j], set.id(pos as usize).0);
                prop_assert_eq!(&payload.packed[j * DIM..(j + 1) * DIM], set.vector(pos as usize));
            }
        }
    }
}
