//! Shape tests: the qualitative results the paper reports must hold on the
//! synthetic collection at test scale. These are the automated versions of
//! EXPERIMENTS.md's "shape expectations".

use eff2_eval::experiments::{exp1_curves, sweep_neighbor_marks};
use eff2_eval::{Lab, Scale};
use std::sync::OnceLock;

/// One shared lab at shape-test scale, built once (BAG clustering is the
/// expensive step).
fn lab() -> &'static Lab {
    static LAB: OnceLock<Lab> = OnceLock::new();
    LAB.get_or_init(|| {
        let mut scale = Scale::new(12_000);
        scale.n_queries = 40;
        scale.k = 10;
        let dir = std::env::temp_dir().join("eff2_shape_lab");
        Lab::prepare(scale, &dir).expect("prepare lab")
    })
}

#[test]
fn table1_shapes() {
    let six = lab().six_indexes().expect("indexes");
    // BAG discards a noticeable but minority share as outliers, and the
    // share shrinks as chunks grow (SMALL discards most) — Table 1.
    let outlier_pct: Vec<f64> = six
        .iter()
        .step_by(2)
        .map(|h| h.meta.discarded as f64 / h.meta.total_input as f64)
        .collect();
    for &p in &outlier_pct {
        assert!(
            p > 0.01 && p < 0.30,
            "outlier share {p} out of the paper's regime"
        );
    }
    assert!(
        outlier_pct[0] >= outlier_pct[1] && outlier_pct[1] >= outlier_pct[2],
        "outlier share must shrink with chunk size: {outlier_pct:?}"
    );
    // Paired BAG/SR indexes have near-identical chunk counts (the SR leaf
    // size is set to BAG's average).
    for pair in six.chunks(2) {
        let (b, s) = (pair[0].meta.n_chunks as f64, pair[1].meta.n_chunks as f64);
        assert!(
            (s / b - 1.0).abs() < 0.15,
            "chunk counts diverge: {b} vs {s}"
        );
    }
}

#[test]
fn fig1_shapes() {
    let six = lab().six_indexes().expect("indexes");
    for pair in six.chunks(2) {
        let bag = &pair[0].meta;
        let sr = &pair[1].meta;
        // BAG's largest chunk dwarfs its mean (the paper's largest holds
        // >20 % of the collection); SR's largest is its mean.
        let bag_head = bag.largest_sizes[0] as f64;
        assert!(
            bag_head > 3.0 * bag.mean_chunk_size,
            "{}: head {bag_head} vs mean {}",
            bag.label,
            bag.mean_chunk_size
        );
        let sr_head = sr.largest_sizes[0] as f64;
        assert!(
            sr_head < 1.2 * sr.mean_chunk_size + 2.0,
            "{}: SR chunks must be uniform (head {sr_head}, mean {})",
            sr.label,
            sr.mean_chunk_size
        );
    }
}

#[test]
fn exp1_shapes() {
    let lab = lab();
    let curves = exp1_curves(lab).expect("curves");
    let k = curves.k;
    let get = |label: &str| {
        curves
            .per_index
            .iter()
            .find(|(l, _, _)| l == label)
            .unwrap_or_else(|| panic!("missing {label}"))
    };

    // Figure 2: on DQ, BAG needs no more chunks than SR to reach most of
    // the answer (compare at m = k/2 and m = k across size classes).
    for class in ["SMALL", "MEDIUM", "LARGE"] {
        let bag = &get(&format!("BAG / {class}")).1;
        let sr = &get(&format!("SR / {class}")).1;
        let m = k / 2;
        assert!(
            bag.chunks_for(m) <= sr.chunks_for(m) * 1.2,
            "{class}: BAG should need ≤ chunks on DQ (m={m}): {} vs {}",
            bag.chunks_for(m),
            sr.chunks_for(m)
        );
    }

    // Figure 4: on DQ, the *first* neighbours arrive no later with SR than
    // with BAG (BAG stalls on its giant chunks) — paper: "finding the
    // first neighbors takes a much longer time with the BAG chunk
    // indexes".
    let mut sr_first_wins = 0;
    for class in ["SMALL", "MEDIUM", "LARGE"] {
        let bag = &get(&format!("BAG / {class}")).1;
        let sr = &get(&format!("SR / {class}")).1;
        if sr.time_for(1) <= bag.time_for(1) {
            sr_first_wins += 1;
        }
    }
    assert!(
        sr_first_wins >= 2,
        "SR should deliver the first neighbour sooner in most size classes"
    );

    // Table 2: completion is faster with larger chunks, for both
    // strategies and both workloads; and BAG completes no later than SR.
    for prefix in ["BAG", "SR"] {
        for pick in [0usize, 1] {
            let t: Vec<f64> = ["SMALL", "MEDIUM", "LARGE"]
                .iter()
                .map(|c| {
                    let e = get(&format!("{prefix} / {c}"));
                    if pick == 0 {
                        e.1.avg_completion_secs
                    } else {
                        e.2.avg_completion_secs
                    }
                })
                .collect();
            assert!(
                t[0] >= t[1] * 0.8 && t[1] >= t[2] * 0.8,
                "{prefix} completion should shrink with chunk size: {t:?}"
            );
        }
    }
    for class in ["SMALL", "MEDIUM", "LARGE"] {
        let bag = &get(&format!("BAG / {class}")).1;
        let sr = &get(&format!("SR / {class}")).1;
        assert!(
            bag.avg_completion_secs <= sr.avg_completion_secs * 1.15,
            "{class}: BAG completes no later than SR (DQ): {} vs {}",
            bag.avg_completion_secs,
            sr.avg_completion_secs
        );
    }
}

#[test]
fn exp2_shapes() {
    // Figures 6/7: a wide flat valley — mid-range chunk sizes are all
    // near-optimal, the extremes are worse.
    let lab = lab();
    let six = lab.six_indexes().expect("indexes");
    let subset = lab.small_retained_subset(&six).expect("subset");
    let dq = lab.dq().expect("dq");
    let marks = sweep_neighbor_marks(lab.scale.k);
    let m = *marks.last().expect("marks");

    let sizes = lab.scale.sweep_sizes();
    let mut times = Vec::new();
    for &size in &sizes {
        let h = lab.sweep_index(&subset, size).expect("sweep index");
        let curve = lab.curve(&h, &dq).expect("curve");
        times.push(curve.time_for(m));
    }
    let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
    // At least half the sweep points sit within 3× of the optimum (the
    // flat valley), and at least one extreme sits outside 1.5× of it.
    let near = times.iter().filter(|&&t| t <= best * 3.0).count();
    assert!(near >= sizes.len() / 2, "valley too narrow: {times:?}");
    let worst = times.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        worst > best * 1.5,
        "sweep should show a penalty at the extremes: {times:?}"
    );
}
