//! Cross-crate integration tests live in `tests/tests/`; this library only
//! hosts shared helpers.

use eff2_descriptor::{DescriptorSet, SyntheticCollection};
use std::path::PathBuf;

/// A deterministic synthetic collection for integration tests.
pub fn test_collection(n: usize, seed: u64) -> DescriptorSet {
    SyntheticCollection::with_size(n, seed).set
}

/// A scratch directory unique to `tag`.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eff2_it_{tag}"));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}
