//! Approximate vs exact: the quality/time trade-off itself.
//!
//! The paper's headline observation (§5.7): "most of the 30 nearest
//! neighbors were found in the first 1–2 seconds, while guaranteeing a
//! correct result took between 16 and 45 seconds". This example compares
//! the two chunk-forming philosophies — BAG clusters vs uniform SR-tree
//! leaves — under the three stop rules, on one collection.
//!
//! ```sh
//! cargo run --release -p eff2-examples --bin approximate_vs_exact
//! ```

use eff2_bag::BagConfig;
use eff2_core::{BagChunker, ChunkIndex, SearchParams, SrTreeChunker, StopRule};
use eff2_descriptor::SyntheticCollection;
use eff2_metrics::precision_at;
use eff2_storage::diskmodel::{DiskModel, VirtualDuration};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let set = SyntheticCollection::with_size(15_000, 11).set;
    let dir = std::env::temp_dir().join("eff2_approx_vs_exact");
    let model = DiskModel::ata_2005();
    let k = 30;

    // Two indexes over the same collection: quality-first and size-first.
    let mpi = BagConfig::estimate_mpi(&set, 1_000, 11);
    let bag = ChunkIndex::build(
        &dir,
        "bag",
        &set,
        &BagChunker {
            config: BagConfig {
                mpi,
                max_passes: 300,
                ..BagConfig::default()
            },
            target_clusters: 40,
        },
        8192,
        model,
    )?;
    let sr_leaf = bag.formation.mean_chunk_size().round().max(2.0) as usize;
    let sr = ChunkIndex::build(
        &dir,
        "sr",
        &set,
        &SrTreeChunker { leaf_size: sr_leaf },
        8192,
        model,
    )?;
    println!(
        "BAG: {} chunks (mean {:.0}, largest {}), {} outliers | SR: {} chunks of {}",
        bag.formation.chunks.len(),
        bag.formation.mean_chunk_size(),
        bag.formation
            .sizes_descending()
            .first()
            .copied()
            .unwrap_or(0),
        bag.formation.outliers.len(),
        sr.formation.chunks.len(),
        sr_leaf,
    );
    println!(
        "(formation cost: BAG {} distance-op equivalents vs SR {})\n",
        bag.formation.cost.distance_ops, sr.formation.cost.distance_ops,
    );

    let queries: Vec<_> = (0..8).map(|i| set.vector_owned(i * 1_873)).collect();

    let labels = ["1 chunk", "5 chunks", "250 ms", "1 s", "completion"];
    let rules = [
        StopRule::Chunks(1),
        StopRule::Chunks(5),
        StopRule::VirtualTime(VirtualDuration::from_ms(250.0)),
        StopRule::VirtualTime(VirtualDuration::from_secs(1.0)),
        StopRule::ToCompletion,
    ];
    let params = SearchParams {
        k,
        stop: StopRule::ToCompletion,
        prefetch_depth: 2,
        log_snapshots: false,
    };

    for (name, index) in [("BAG", &bag.index), ("SR ", &sr.index)] {
        println!("{name} index:");
        // One scan per query answers the whole rule ladder: each entry is
        // identical to a separate search with that rule, but the chunks
        // are only read to the deepest rule's stopping point. The
        // completion entry doubles as the quality reference.
        let mut time = [0.0f64; 5];
        let mut chunks = [0usize; 5];
        let mut precision = [0.0f64; 5];
        for q in &queries {
            let results = index.evaluate_stop_rules(q, &params, &rules)?;
            let truth: Vec<u32> = results[4].neighbors.iter().map(|n| n.id).collect();
            for (ri, r) in results.iter().enumerate() {
                time[ri] += r.log.total_virtual.as_secs();
                chunks[ri] += r.log.chunks_read;
                let ids: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
                precision[ri] += precision_at(&ids, &truth);
            }
        }
        let nq = queries.len() as f64;
        for (ri, label) in labels.iter().enumerate() {
            println!(
                "  stop = {label:<11} avg {:>6.2}s  {:>5.1} chunks  precision@{k} = {:>5.1}%",
                time[ri] / nq,
                chunks[ri] as f64 / nq,
                100.0 * precision[ri] / nq
            );
        }
        println!();
    }
    println!(
        "the trade-off: a handful of chunks buys most of the quality at a fraction of the time."
    );
    Ok(())
}
