//! Approximate vs exact: the quality/time trade-off itself.
//!
//! The paper's headline observation (§5.7): "most of the 30 nearest
//! neighbors were found in the first 1–2 seconds, while guaranteeing a
//! correct result took between 16 and 45 seconds". This example compares
//! the two chunk-forming philosophies — BAG clusters vs uniform SR-tree
//! leaves — under the three stop rules, on one collection.
//!
//! ```sh
//! cargo run --release -p eff2-examples --bin approximate_vs_exact
//! ```

use eff2_bag::BagConfig;
use eff2_core::{BagChunker, ChunkIndex, SearchParams, SrTreeChunker, StopRule};
use eff2_descriptor::SyntheticCollection;
use eff2_metrics::precision_at;
use eff2_storage::diskmodel::{DiskModel, VirtualDuration};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let set = SyntheticCollection::with_size(15_000, 11).set;
    let dir = std::env::temp_dir().join("eff2_approx_vs_exact");
    let model = DiskModel::ata_2005();
    let k = 30;

    // Two indexes over the same collection: quality-first and size-first.
    let mpi = BagConfig::estimate_mpi(&set, 1_000, 11);
    let bag = ChunkIndex::build(
        &dir,
        "bag",
        &set,
        &BagChunker {
            config: BagConfig { mpi, max_passes: 300, ..BagConfig::default() },
            target_clusters: 40,
        },
        8192,
        model,
    )?;
    let sr_leaf = bag.formation.mean_chunk_size().round().max(2.0) as usize;
    let sr = ChunkIndex::build(&dir, "sr", &set, &SrTreeChunker { leaf_size: sr_leaf }, 8192, model)?;
    println!(
        "BAG: {} chunks (mean {:.0}, largest {}), {} outliers | SR: {} chunks of {}",
        bag.formation.chunks.len(),
        bag.formation.mean_chunk_size(),
        bag.formation.sizes_descending().first().copied().unwrap_or(0),
        bag.formation.outliers.len(),
        sr.formation.chunks.len(),
        sr_leaf,
    );
    println!(
        "(formation cost: BAG {} distance-op equivalents vs SR {})\n",
        bag.formation.cost.distance_ops, sr.formation.cost.distance_ops,
    );

    let queries: Vec<_> = (0..8).map(|i| set.vector_owned(i * 1_873)).collect();

    for (name, index) in [("BAG", &bag.index), ("SR ", &sr.index)] {
        // Per-index exact answers are the quality reference.
        let truths: Vec<Vec<u32>> = queries
            .iter()
            .map(|q| {
                index
                    .search(q, &SearchParams::exact(k))
                    .map(|r| r.neighbors.iter().map(|n| n.id).collect())
            })
            .collect::<Result<_, _>>()?;

        println!("{name} index:");
        let rules: Vec<(String, StopRule)> = vec![
            ("1 chunk".into(), StopRule::Chunks(1)),
            ("5 chunks".into(), StopRule::Chunks(5)),
            ("250 ms".into(), StopRule::VirtualTime(VirtualDuration::from_ms(250.0))),
            ("1 s".into(), StopRule::VirtualTime(VirtualDuration::from_secs(1.0))),
            ("completion".into(), StopRule::ToCompletion),
        ];
        for (label, stop) in rules {
            let mut time = 0.0;
            let mut precision = 0.0;
            let mut chunks = 0usize;
            for (q, truth) in queries.iter().zip(&truths) {
                let r = index.search(
                    q,
                    &SearchParams { k, stop, prefetch_depth: 2, log_snapshots: false },
                )?;
                time += r.log.total_virtual.as_secs();
                chunks += r.log.chunks_read;
                let ids: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
                precision += precision_at(&ids, truth);
            }
            let nq = queries.len() as f64;
            println!(
                "  stop = {label:<11} avg {:>6.2}s  {:>5.1} chunks  precision@{k} = {:>5.1}%",
                time / nq,
                chunks as f64 / nq,
                100.0 * precision / nq
            );
        }
        println!();
    }
    println!("the trade-off: a handful of chunks buys most of the quality at a fraction of the time.");
    Ok(())
}
