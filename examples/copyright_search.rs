//! Copyright-protection search — the application the paper's descriptor
//! scheme was designed for ("particularly well suited to enforce robust
//! content-based image searches for copyright protection", §4.1).
//!
//! A *suspect* image is described by a few hundred local descriptors; each
//! descriptor votes for the collection images its nearest neighbours come
//! from. An image that accumulates many votes is a likely (possibly
//! transformed) copy. This example plants a perturbed copy of one image in
//! the collection and shows that approximate multi-descriptor search
//! recovers it in a fraction of the exact search's time.
//!
//! ```sh
//! cargo run --release -p eff2-examples --bin copyright_search
//! ```

use eff2_core::{ChunkIndex, SearchParams, SrTreeChunker};
use eff2_descriptor::{CollectionSpec, SyntheticCollection, Vector};
use eff2_storage::DiskModel;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let collection = SyntheticCollection::generate(CollectionSpec::sized(30_000, 21));
    let set = collection.set;
    println!(
        "collection: {} descriptors from ~{} broadcast images",
        set.len(),
        collection.spec.n_images
    );

    let dir = std::env::temp_dir().join("eff2_copyright");
    let built = ChunkIndex::build(
        &dir,
        "copyright",
        &set,
        &SrTreeChunker { leaf_size: 600 },
        8192,
        DiskModel::ata_2005(),
    )?;

    // The "suspect": every descriptor of one collection image, slightly
    // perturbed (simulating re-encoding / mild editing of a pirated copy).
    let pirated_image = 17u32;
    let suspect: Vec<Vector> = (0..set.len())
        .filter(|&i| set.image(i).map(|im| im.0) == Some(pirated_image))
        .map(|i| {
            let mut v = set.vector_owned(i);
            for d in 0..eff2_descriptor::DIM {
                v[d] += ((d as f32 * 0.37).sin()) * 0.05; // deterministic jitter
            }
            v
        })
        .collect();
    println!(
        "suspect image: {} local descriptors (perturbed copy of img{pirated_image})\n",
        suspect.len()
    );

    for (label, params) in [
        ("exact (to completion)", SearchParams::exact(5)),
        (
            "approximate (2 chunks/descriptor)",
            SearchParams::approximate(5, 2),
        ),
    ] {
        let mut votes: HashMap<u32, usize> = HashMap::new();
        let mut virtual_total = 0.0;
        for q in &suspect {
            let r = built.index.search(q, &params)?;
            virtual_total += r.log.total_virtual.as_secs();
            for n in &r.neighbors {
                // Descriptor ids are collection positions in this synthetic
                // collection, so the image map resolves the vote.
                if let Some(img) = set.image(n.id as usize) {
                    *votes.entry(img.0).or_default() += 1;
                }
            }
        }
        let mut ranked: Vec<(u32, usize)> = votes.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        println!("{label}: total virtual time {virtual_total:.1}s");
        for (img, v) in ranked.iter().take(3) {
            let marker = if *img == pirated_image {
                "  <-- the pirated source"
            } else {
                ""
            };
            println!("  img{img:<6} {v:>5} votes{marker}");
        }
        assert_eq!(
            ranked.first().map(|&(img, _)| img),
            Some(pirated_image),
            "the pirated source must win the vote"
        );
        println!();
    }
    println!("both searches identify the source; the approximate one does so far sooner.");
    Ok(())
}
