//! Medrank vs chunk-index search — the rank-aggregation alternative the
//! paper's related work highlights (§6: "I/O bound, and I/O optimal,
//! because the algorithm is based on the aggregation of ranking rather
//! than distance calculations").
//!
//! This example compares three ways to answer the same approximate top-k
//! query: a chunk index searched to completion (exact), the chunk index
//! under the paper's aggressive chunks-stop rule, and Medrank's median-rank
//! walk (which never evaluates a 24-dimensional distance at query time).
//!
//! ```sh
//! cargo run --release -p eff2-examples --bin medrank_baseline
//! ```

use eff2_core::{ChunkIndex, SearchParams, SrTreeChunker};
use eff2_descriptor::SyntheticCollection;
use eff2_medrank::{MedrankIndex, MedrankParams};
use eff2_metrics::precision_at;
use eff2_storage::DiskModel;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let set = SyntheticCollection::with_size(25_000, 5).set;
    let model = DiskModel::ata_2005();
    let dir = std::env::temp_dir().join("eff2_medrank_example");

    let chunked = ChunkIndex::build(
        &dir,
        "mr",
        &set,
        &SrTreeChunker { leaf_size: 500 },
        8192,
        model,
    )?;
    let medrank = MedrankIndex::build(
        &set,
        MedrankParams {
            lines: 11,
            ..MedrankParams::default()
        },
    );
    println!(
        "collection: {} descriptors | chunk index: {} chunks | medrank: {} sorted runs\n",
        set.len(),
        chunked.index.store().n_chunks(),
        medrank.params().lines
    );

    let k = 10;
    let queries: Vec<_> = (0..12).map(|i| set.vector_owned(i * 2_003)).collect();

    let mut stats: Vec<(&str, f64, f64)> = Vec::new(); // (name, precision, virtual secs)
    let mut exact_truths = Vec::new();
    {
        let mut time = 0.0;
        for q in &queries {
            let r = chunked.index.search(q, &SearchParams::exact(k))?;
            time += r.log.total_virtual.as_secs();
            exact_truths.push(r.neighbors.iter().map(|n| n.id).collect::<Vec<u32>>());
        }
        stats.push((
            "chunk index (to completion)",
            1.0,
            time / queries.len() as f64,
        ));
    }
    {
        let mut time = 0.0;
        let mut prec = 0.0;
        for (q, truth) in queries.iter().zip(&exact_truths) {
            let r = chunked.index.search(q, &SearchParams::approximate(k, 3))?;
            time += r.log.total_virtual.as_secs();
            let ids: Vec<u32> = r.neighbors.iter().map(|n| n.id).collect();
            prec += precision_at(&ids, truth);
        }
        let n = queries.len() as f64;
        stats.push(("chunk index (3 chunks)", prec / n, time / n));
    }
    {
        let mut time = 0.0;
        let mut prec = 0.0;
        for (q, truth) in queries.iter().zip(&exact_truths) {
            let (res, steps) = medrank.knn(q, k);
            time += medrank.query_cost(&model, steps).as_secs();
            let ids: Vec<u32> = res.iter().map(|r| r.id).collect();
            prec += precision_at(&ids, truth);
        }
        let n = queries.len() as f64;
        stats.push(("medrank (11 lines)", prec / n, time / n));
    }

    println!(
        "{:<30} {:>12} {:>14}",
        "method", "precision@10", "virtual time"
    );
    for (name, prec, time) in stats {
        println!("{name:<30} {:>11.0}% {:>13.3}s", prec * 100.0, time);
    }
    println!("\nmedrank trades distance computations for sorted-run walking — a different point\non the same quality/time frontier the paper studies.");
    Ok(())
}
