//! Quickstart: build a chunk index over a synthetic descriptor collection
//! and run a resumable anytime search session plus an approximate query.
//!
//! ```sh
//! cargo run --release -p eff2-examples --bin quickstart
//! ```

use eff2_core::{ChunkIndex, SearchParams, SrTreeChunker};
use eff2_descriptor::SyntheticCollection;
use eff2_storage::DiskModel;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // 1. A collection of ~20k local image descriptors (24-dimensional),
    //    simulating a few hundred images' worth of TV footage.
    let collection = SyntheticCollection::with_size(20_000, 7);
    let set = collection.set;
    println!(
        "collection: {} descriptors from ~{} images",
        set.len(),
        collection.spec.n_images
    );

    // 2. Build a chunk index: uniform 500-descriptor chunks from SR-tree
    //    leaves, stored as a page-padded chunk file + centroid/radius index.
    let dir = std::env::temp_dir().join("eff2_quickstart");
    let built = ChunkIndex::build(
        &dir,
        "quickstart",
        &set,
        &SrTreeChunker { leaf_size: 500 },
        8192,
        DiskModel::ata_2005(),
    )?;
    println!(
        "index: {} chunks of ~{:.0} descriptors each",
        built.formation.chunks.len(),
        built.formation.mean_chunk_size()
    );

    // 3. Query with a descriptor from the collection (a "dataset query").
    let query = set.vector_owned(1234);

    // Exact search as a resumable session: chunks arrive one step() at a
    // time in centroid-distance order, and the current answer is
    // inspectable between steps — the anytime behaviour the paper studies.
    let mut session = built.index.session(&query, &SearchParams::exact(10));
    println!(
        "\nstepping the session ({} chunks ranked):",
        session.ranking().len()
    );
    while !session.stop_satisfied() {
        let Some(event) = session.step()? else { break };
        println!(
            "  chunk #{:<2} (id {:>2}): kth dist {:.4} at virtual {}",
            event.rank, event.chunk_id, event.kth_dist, event.completed_at,
        );
    }
    let exact = session.into_result();
    println!(
        "exact top-10: read {} of {} chunks, virtual time {}, proven exact: {}",
        exact.log.chunks_read,
        built.index.store().n_chunks(),
        exact.log.total_virtual,
        exact.log.completed,
    );
    for n in exact.neighbors.iter().take(3) {
        println!("  id {:>6}  dist {:.4}", n.id, n.dist);
    }

    // Approximate search: stop after the 3 nearest chunks — the paper's
    // aggressive stop rule. (One-shot `search` drives the same session
    // machinery to its stop rule.)
    let approx = built
        .index
        .search(&query, &SearchParams::approximate(10, 3))?;
    let exact_ids: Vec<u32> = exact.neighbors.iter().map(|n| n.id).collect();
    let approx_ids: Vec<u32> = approx.neighbors.iter().map(|n| n.id).collect();
    let precision = eff2_metrics::precision_at(&approx_ids, &exact_ids);
    println!(
        "\napprox (3 chunks): virtual time {} ({:.1}x faster), precision@10 = {:.0}%",
        approx.log.total_virtual,
        exact.log.total_virtual.as_secs() / approx.log.total_virtual.as_secs(),
        100.0 * precision
    );
    Ok(())
}
