//! Chunk-size tuning — a miniature of the paper's Experiment 2 (Figures
//! 6–7): how does the chunk size affect the time to reach a given result
//! quality?
//!
//! The paper's lesson: performance is flat across a wide range of chunk
//! sizes (≈1k–10k descriptors at 5M scale); only the extremes hurt — tiny
//! chunks pay per-chunk seek overhead and index-ranking cost, giant chunks
//! stall the chunk-granular search loop.
//!
//! ```sh
//! cargo run --release -p eff2-examples --bin chunk_size_tuning
//! ```

use eff2_core::StopRule;
use eff2_core::{ChunkIndex, SearchParams, SrTreeChunker};
use eff2_descriptor::SyntheticCollection;
use eff2_metrics::precision_at;
use eff2_storage::diskmodel::{DiskModel, VirtualDuration};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let set = SyntheticCollection::with_size(40_000, 3).set;
    let dir = std::env::temp_dir().join("eff2_tuning");
    let model = DiskModel::ata_2005();
    let k = 20;

    // Ten dataset queries with known exact answers.
    let queries: Vec<_> = (0..10).map(|i| set.vector_owned(i * 3_777)).collect();
    let truths: Vec<Vec<u32>> = queries
        .iter()
        .map(|q| {
            eff2_core::scan_knn(&set, q, k)
                .into_iter()
                .map(|n| n.id)
                .collect()
        })
        .collect();

    println!(
        "{:>10} {:>8} {:>14} {:>16} {:>18}",
        "chunk size", "chunks", "index read", "t(precision=1)", "precision@200ms"
    );
    for chunk_size in [50usize, 150, 400, 1_000, 2_500, 6_000, 15_000] {
        let built = ChunkIndex::build(
            &dir,
            &format!("tune{chunk_size}"),
            &set,
            &SrTreeChunker {
                leaf_size: chunk_size,
            },
            8192,
            model,
        )?;

        let mut t_exact = 0.0;
        let mut p_budget = 0.0;
        let mut index_read_ms = 0.0;
        for (q, truth) in queries.iter().zip(&truths) {
            // Time until the exact answer is in hand (run to completion).
            let exact = built.index.search(q, &SearchParams::exact(k))?;
            t_exact += exact.log.total_virtual.as_secs();
            index_read_ms += exact.log.index_read_time.as_ms();

            // Quality within a 200 ms virtual budget.
            let budget = built.index.search(
                q,
                &SearchParams {
                    k,
                    stop: StopRule::VirtualTime(VirtualDuration::from_ms(200.0)),
                    prefetch_depth: 2,
                    log_snapshots: false,
                },
            )?;
            let ids: Vec<u32> = budget.neighbors.iter().map(|n| n.id).collect();
            p_budget += precision_at(&ids, truth);
        }
        let nq = queries.len() as f64;
        println!(
            "{:>10} {:>8} {:>12.1}ms {:>15.2}s {:>17.0}%",
            chunk_size,
            built.index.store().n_chunks(),
            index_read_ms / nq,
            t_exact / nq,
            100.0 * p_budget / nq
        );
    }
    println!("\nnote the flat valley in the middle: chunk size barely matters until the extremes.");
    Ok(())
}
